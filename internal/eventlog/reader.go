package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"titant/internal/logio"
)

var le = binary.LittleEndian

// Record is one decoded log event. Payload aliases the scanner's reused
// buffer: callbacks must copy it to keep it past the call.
type Record struct {
	Offset  uint64
	Time    int64 // ingest timestamp, unix nanos
	Kind    uint8
	Flags   uint8
	Payload []byte
}

// segScan is the outcome of scanning one segment file.
type segScan struct {
	Base       uint64
	Records    int
	End        uint64 // offset one past the last intact record
	CleanBytes int64  // file length of the intact prefix (header included)
	TailBytes  int64  // torn/corrupt bytes past the prefix
}

// scanSegment reads a segment file, verifying the header, every frame
// CRC, and record-offset continuity from the base. Offsets are the
// phantom-record defense the CRC alone cannot give: a frame that is
// internally consistent but out of sequence (a stray write, a spliced
// file) stops the scan instead of being delivered. fn may be nil to scan
// for structure only.
func scanSegment(path string, wantBase uint64, fn func(Record) error) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, fmt.Errorf("eventlog: open segment: %w", err)
	}
	defer f.Close()

	var hdr [segHdrSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return segScan{}, fmt.Errorf("eventlog: segment %s: short header: %w", path, err)
	}
	if le.Uint32(hdr[0:]) != segMagic {
		return segScan{}, fmt.Errorf("eventlog: segment %s: bad magic %#x", path, le.Uint32(hdr[0:]))
	}
	if v := le.Uint32(hdr[4:]); v != segVersion {
		return segScan{}, fmt.Errorf("eventlog: segment %s: unsupported version %d", path, v)
	}
	base := le.Uint64(hdr[8:])
	if base != wantBase {
		return segScan{}, fmt.Errorf("eventlog: segment %s: header base %#x does not match name %#x", path, base, wantBase)
	}

	sc := segScan{Base: base, End: base}
	var cbErr error
	res, err := logio.Scan(f, func(payload []byte) error {
		if len(payload) < envSize {
			return logio.ErrStop // CRC-intact but not an event record: tail
		}
		off := le.Uint64(payload[0:])
		if off != sc.End {
			return logio.ErrStop // discontinuity: fail closed, no phantoms
		}
		if fn != nil {
			if err := fn(Record{
				Offset:  off,
				Time:    int64(le.Uint64(payload[8:])),
				Kind:    payload[16],
				Flags:   payload[17],
				Payload: payload[envSize:],
			}); err != nil {
				cbErr = err
				return logio.ErrStop
			}
		}
		sc.Records++
		sc.End++
		return nil
	})
	if err != nil {
		return segScan{}, fmt.Errorf("eventlog: scan %s: %w", path, err)
	}
	if cbErr != nil {
		return segScan{}, cbErr
	}
	sc.CleanBytes = segHdrSize + res.Clean
	sc.TailBytes = res.Tail
	return sc, nil
}

// ErrCorrupt marks damage outside the replayable tail: a sealed segment
// that does not run cleanly into its successor, or a gap in the offset
// chain. Recovery must not proceed past it silently.
var ErrCorrupt = errors.New("eventlog: log corrupted before tail")

// ReadFrom replays every record with offset >= from, in offset order,
// into fn. Damage in the final segment is tolerated as a torn tail
// (replay ends there); damage anywhere earlier returns ErrCorrupt,
// because records after it exist but the chain to them is broken. The
// Record passed to fn aliases a reused buffer. Returns the offset one
// past the last record delivered.
func (l *Log) ReadFrom(from uint64, fn func(Record) error) (uint64, error) {
	l.mu.Lock()
	if l.buf != nil && !l.killed && !l.closed {
		// Make buffered appends visible to this same-process reader; no
		// fsync needed, the file contents are what we read.
		if err := l.buf.flush(); err != nil {
			l.mu.Unlock()
			return 0, fmt.Errorf("eventlog: flush before read: %w", err)
		}
	}
	segs := append([]segmentRef(nil), l.segs...)
	l.mu.Unlock()
	return readSegments(segs, from, fn)
}

func readSegments(segs []segmentRef, from uint64, fn func(Record) error) (uint64, error) {
	next := from
	if len(segs) > 0 && from < segs[0].base {
		// Records below the first segment were compacted away; replay can
		// only start at the retained chain.
		next = segs[0].base
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		if !last && segs[i+1].base <= next {
			continue // entirely below the requested offset
		}
		deliver := func(r Record) error {
			if r.Offset < from {
				return nil
			}
			return fn(r)
		}
		sc, err := scanSegment(seg.path, seg.base, deliver)
		if err != nil {
			return next, err
		}
		if seg.base > next {
			return next, fmt.Errorf("%w: gap between offset %d and segment base %d", ErrCorrupt, next, seg.base)
		}
		if !last {
			if sc.TailBytes > 0 || sc.End != segs[i+1].base {
				return next, fmt.Errorf("%w: sealed segment %s ends at %d with %d tail bytes, next segment starts at %d",
					ErrCorrupt, seg.path, sc.End, sc.TailBytes, segs[i+1].base)
			}
		}
		if sc.End > next {
			next = sc.End
		}
	}
	return next, nil
}

// SegmentInfo is one segment's inspection summary.
type SegmentInfo struct {
	Path    string `json:"path"`
	Base    uint64 `json:"base"`
	Records int    `json:"records"`
	End     uint64 `json:"end"`
	Bytes   int64  `json:"bytes"`
	Torn    bool   `json:"torn"`
}

// InspectResult summarises a log directory for tooling (titant logctl).
type InspectResult struct {
	Segments    []SegmentInfo     `json:"segments"`
	FirstOffset uint64            `json:"first_offset"`
	NextOffset  uint64            `json:"next_offset"`
	Records     int               `json:"records"`
	Kinds       map[string]int    `json:"kinds"`
	Consumers   map[string]uint64 `json:"consumers,omitempty"`
	SnapshotEnd uint64            `json:"snapshot_end"`
}

// kindName renders an event kind for inspection output.
func kindName(k uint8) string {
	switch k {
	case KindTxn:
		return "txn"
	case KindScore:
		return "score"
	case KindShadow:
		return "shadow"
	case KindReset:
		return "reset"
	default:
		return fmt.Sprintf("kind%d", k)
	}
}

// Inspect scans an entire log directory offline: segment chain, record
// counts by kind, consumer offsets, newest snapshot. It does not open
// the log for writing and is safe on a directory another process owns
// (modulo in-flight appends, which read as a tail).
func Inspect(dir string) (InspectResult, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return InspectResult{}, err
	}
	res := InspectResult{Kinds: map[string]int{}}
	for i, seg := range segs {
		sc, err := scanSegment(seg.path, seg.base, func(r Record) error {
			res.Kinds[kindName(r.Kind)]++
			return nil
		})
		if err != nil {
			return res, err
		}
		res.Segments = append(res.Segments, SegmentInfo{
			Path:    seg.path,
			Base:    sc.Base,
			Records: sc.Records,
			End:     sc.End,
			Bytes:   sc.CleanBytes + sc.TailBytes,
			Torn:    sc.TailBytes > 0,
		})
		res.Records += sc.Records
		if i == 0 {
			res.FirstOffset = sc.Base
		}
		res.NextOffset = sc.End
	}
	res.Consumers, err = readConsumerDir(dir)
	if err != nil {
		return res, err
	}
	if end, _, err := latestSnapshot(dir); err == nil {
		res.SnapshotEnd = end
	}
	return res, nil
}
