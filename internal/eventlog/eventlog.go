// Package eventlog is the durability plane of the serving layer: an
// append-only, segmented event log that plays the Kafka role for a single
// node. Every event the Model Server must not lose — ingested
// transactions, score observations, shadow comparisons, bundle swaps —
// is appended here before it is applied to in-memory state, so a crashed
// process rebuilds its streaming window, drift baselines, and shadow
// tallies bitwise-identical by replaying the log (optionally fast-forwarded
// by a state snapshot; see snapshot.go).
//
// Layout of a log directory:
//
//	0000000000000000.seg   segment files, named by base offset
//	0000000000013880.seg
//	<name>.off             persisted consumer offsets
//	snapshot-<offset>.snap periodic derived-state snapshots
//
// Each segment starts with a 16-byte header (magic, version, base offset)
// followed by logio CRC32C-framed records. A record is an 18-byte
// envelope — monotonic offset, ingest timestamp, event kind, flags — plus
// an opaque payload (the txn codec record for ingest events). Appends go
// through a group-commit writer: records buffer in memory and fsync in
// batches, by interval or by byte threshold, so steady-state ingest pays
// amortised fsync cost instead of one fsync per transaction. Replay is
// torn-tail tolerant on the final segment (a crash mid-append loses only
// the unsynced suffix, never the intact prefix) and fails closed
// everywhere else: a CRC mismatch or offset discontinuity in a sealed
// segment is corruption, not a tail, and stops recovery with an error
// rather than serving phantom state.
package eventlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"titant/internal/logio"
)

// Event kinds. The log itself treats payloads as opaque; kinds exist so
// replay and inspection can dispatch without decoding.
const (
	// KindTxn is an ingested transaction; the payload is one txn codec
	// record and flag bit 0 mirrors the fraud label.
	KindTxn uint8 = 1
	// KindScore is a scoring observation: the per-series score values fed
	// to the drift monitor, logged so replay rebuilds the exact
	// baseline/live split without re-scoring.
	KindScore uint8 = 2
	// KindShadow is one champion/challenger comparison.
	KindShadow uint8 = 3
	// KindReset marks a bundle swap: replay resets the drift monitor and
	// shadow meter at this point, as the live engine did.
	KindReset uint8 = 4
)

// FlagFraud is the envelope flag bit mirroring a KindTxn fraud label.
const FlagFraud uint8 = 1

const (
	segMagic    = 0x544c4f47 // "TLOG"
	segVersion  = 1
	segHdrSize  = 16
	envSize     = 18
	segSuffix   = ".seg"
	offSuffix   = ".off"
	defaultPerm = 0o644
)

// Options tune the log; zero values take defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	SegmentBytes int64
	// FsyncInterval is the maximum time an acknowledged append waits
	// before it is fsynced (the group-commit timer).
	FsyncInterval time.Duration
	// FsyncBytes fsyncs eagerly once this many unsynced bytes accumulate,
	// bounding the loss window under sustained load.
	FsyncBytes int64
	// BufferBytes sizes the in-memory append buffer.
	BufferBytes int
	// RetainSegments is the minimum number of segments Compact keeps,
	// regardless of snapshots and consumer progress.
	RetainSegments int
	// RetainAge, when positive, keeps sealed segments younger than this
	// even if they are compactable.
	RetainAge time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.FsyncBytes <= 0 {
		o.FsyncBytes = 1 << 20
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = 1 << 18
	}
	if o.RetainSegments <= 0 {
		o.RetainSegments = 2
	}
	return o
}

// Option mutates Options, mirroring the functional-option style used
// across the repo.
type Option func(*Options)

// WithSegmentBytes sets the segment rotation threshold.
func WithSegmentBytes(n int64) Option { return func(o *Options) { o.SegmentBytes = n } }

// WithFsyncInterval sets the group-commit timer.
func WithFsyncInterval(d time.Duration) Option { return func(o *Options) { o.FsyncInterval = d } }

// WithFsyncBytes sets the eager-fsync byte threshold.
func WithFsyncBytes(n int64) Option { return func(o *Options) { o.FsyncBytes = n } }

// WithRetainSegments sets the minimum segment count Compact keeps.
func WithRetainSegments(n int) Option { return func(o *Options) { o.RetainSegments = n } }

// WithRetainAge keeps sealed segments younger than d out of compaction.
func WithRetainAge(d time.Duration) Option { return func(o *Options) { o.RetainAge = d } }

// segmentRef is one segment file known to the log, ordered by base.
type segmentRef struct {
	base uint64
	path string
}

// Log is an open event log. Append/Sync/Close/Kill are safe for
// concurrent use; one Log owns its directory.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segs     []segmentRef // all segments, sorted by base; last is active
	f        *os.File     // active segment
	buf      *bufWriter
	fw       *logio.Writer
	segBytes int64 // active segment size including header
	next     uint64
	unsynced int64
	killed   bool
	closed   bool

	consumers map[string]uint64 // last committed offset per consumer
	snapEnd   uint64            // end offset of the newest valid snapshot

	appended  atomic.Int64
	fsyncs    atomic.Int64
	bytes     atomic.Int64
	lastFsync atomic.Int64 // unix nanos of the last completed fsync

	scratch []byte

	quit chan struct{}
	wg   sync.WaitGroup
}

// bufWriter is a plain buffered writer whose buffer we can drop on Kill
// (bufio.Writer has no discard operation that survives reuse).
type bufWriter struct {
	f   *os.File
	buf []byte
}

func (b *bufWriter) Write(p []byte) (int, error) {
	if len(b.buf)+len(p) > cap(b.buf) {
		if err := b.flush(); err != nil {
			return 0, err
		}
	}
	if len(p) > cap(b.buf) {
		return b.f.Write(p)
	}
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *bufWriter) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

func (b *bufWriter) discard() { b.buf = b.buf[:0] }

// Open opens (or creates) the log in dir, recovering from any torn tail
// left by a crash: the final segment is scanned, its intact prefix kept,
// and the file truncated to it before appends resume.
func Open(dir string, opts ...Option) (*Log, error) {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return openLog(dir, o)
}

func openLog(dir string, o Options) (*Log, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: mkdir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: o, segs: segs, consumers: map[string]uint64{}, quit: make(chan struct{})}
	if len(segs) == 0 {
		if err := l.startSegment(0); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		scan, err := scanSegment(last.path, last.base, nil)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(last.path, os.O_RDWR, defaultPerm)
		if err != nil {
			return nil, fmt.Errorf("eventlog: open segment: %w", err)
		}
		// Drop the torn tail before appending; an O_APPEND reopen would
		// wedge the garbage between old and new records forever.
		if err := f.Truncate(scan.CleanBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("eventlog: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(scan.CleanBytes, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("eventlog: seek: %w", err)
		}
		l.f = f
		l.segBytes = scan.CleanBytes
		l.next = scan.End
		l.buf = &bufWriter{f: f, buf: make([]byte, 0, o.BufferBytes)}
		l.fw = logio.NewWriter(l.buf)
	}
	if err := l.loadConsumers(); err != nil {
		l.f.Close()
		return nil, err
	}
	if end, _, err := latestSnapshot(dir); err == nil {
		l.snapEnd = end
	}
	l.lastFsync.Store(time.Now().UnixNano())
	l.wg.Add(1)
	go l.syncLoop()
	return l, nil
}

// startSegment creates a fresh segment with the given base offset and
// makes it active. Caller holds mu (or is Open, pre-sharing).
func (l *Log) startSegment(base uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%016x%s", base, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, defaultPerm)
	if err != nil {
		return fmt.Errorf("eventlog: create segment: %w", err)
	}
	var hdr [segHdrSize]byte
	le.PutUint32(hdr[0:], segMagic)
	le.PutUint32(hdr[4:], segVersion)
	le.PutUint64(hdr[8:], base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("eventlog: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("eventlog: sync segment header: %w", err)
	}
	l.f = f
	l.segBytes = segHdrSize
	l.next = base
	if l.buf == nil {
		l.buf = &bufWriter{f: f, buf: make([]byte, 0, l.opts.BufferBytes)}
	} else {
		l.buf.f = f
	}
	if l.fw == nil {
		l.fw = logio.NewWriter(l.buf)
	}
	l.segs = append(l.segs, segmentRef{base: base, path: path})
	return nil
}

// Append logs one event and returns its offset. The record is durable
// once the next group commit completes (Sync forces one); the append
// itself only buffers. Allocation-free in steady state.
func (l *Log) Append(kind, flags uint8, ts int64, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.killed {
		return 0, errors.New("eventlog: log is closed")
	}
	off := l.next
	need := envSize + len(payload)
	if cap(l.scratch) < need {
		l.scratch = make([]byte, 0, need+1024)
	}
	rec := l.scratch[:need]
	le.PutUint64(rec[0:], off)
	le.PutUint64(rec[8:], uint64(ts))
	rec[16] = kind
	rec[17] = flags
	copy(rec[envSize:], payload)
	n, err := l.fw.Append(rec)
	if err != nil {
		return 0, fmt.Errorf("eventlog: append: %w", err)
	}
	l.next++
	l.segBytes += int64(n)
	l.unsynced += int64(n)
	l.appended.Add(1)
	l.bytes.Add(int64(n))
	if l.unsynced >= l.opts.FsyncBytes {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// Sync forces a group commit: everything appended so far is flushed and
// fsynced before Sync returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.killed {
		return errors.New("eventlog: log is closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.buf.flush(); err != nil {
		return fmt.Errorf("eventlog: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("eventlog: fsync: %w", err)
	}
	l.unsynced = 0
	l.fsyncs.Add(1)
	l.lastFsync.Store(time.Now().UnixNano())
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("eventlog: close segment: %w", err)
	}
	return l.startSegment(l.next)
}

// syncLoop is the group-commit timer: any appends older than
// FsyncInterval get fsynced on the next tick.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && !l.killed && l.unsynced > 0 {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs, and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed || l.killed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	cerr := l.f.Close()
	close(l.quit)
	l.mu.Unlock()
	l.wg.Wait()
	if err != nil {
		return err
	}
	return cerr
}

// Kill simulates a crash: buffered-but-unsynced appends are dropped and
// the file descriptor is closed without flushing, exactly the state a
// power cut at this instant would leave on disk. Test-harness hook for
// the kill/restart recovery suite; a production caller wants Close.
func (l *Log) Kill() {
	l.mu.Lock()
	if l.closed || l.killed {
		l.mu.Unlock()
		return
	}
	l.killed = true
	l.buf.discard()
	_ = l.f.Close()
	close(l.quit)
	l.mu.Unlock()
	l.wg.Wait()
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// NextOffset returns the offset the next append will receive.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Stats is the log's operational snapshot, exported through /v1/stats.
type Stats struct {
	Appended      int64             `json:"appended"`
	Fsyncs        int64             `json:"fsyncs"`
	Bytes         int64             `json:"bytes"`
	Segments      int               `json:"segments"`
	FirstOffset   uint64            `json:"first_offset"`
	NextOffset    uint64            `json:"next_offset"`
	UnsyncedBytes int64             `json:"unsynced_bytes"`
	LastFsyncAge  float64           `json:"last_fsync_age_seconds"`
	SnapshotEnd   uint64            `json:"snapshot_end"`
	Consumers     map[string]uint64 `json:"consumers,omitempty"`
	MaxLag        int64             `json:"max_consumer_lag"`
}

// Stats reads the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Appended:      l.appended.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Bytes:         l.bytes.Load(),
		Segments:      len(l.segs),
		NextOffset:    l.next,
		UnsyncedBytes: l.unsynced,
		SnapshotEnd:   l.snapEnd,
		LastFsyncAge:  time.Since(time.Unix(0, l.lastFsync.Load())).Seconds(),
	}
	if len(l.segs) > 0 {
		st.FirstOffset = l.segs[0].base
	}
	if len(l.consumers) > 0 {
		st.Consumers = make(map[string]uint64, len(l.consumers))
		for name, off := range l.consumers {
			st.Consumers[name] = off
			if lag := int64(l.next) - int64(off); lag > st.MaxLag {
				st.MaxLag = lag
			}
		}
	}
	return st
}

// listSegments finds and orders dir's segment files by base offset,
// validating that names parse and bases strictly increase.
func listSegments(dir string) ([]segmentRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: read dir: %w", err)
	}
	var segs []segmentRef
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("eventlog: segment name %q does not parse: %w", name, err)
		}
		segs = append(segs, segmentRef{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].base < segs[b].base })
	for i := 1; i < len(segs); i++ {
		if segs[i].base <= segs[i-1].base {
			return nil, fmt.Errorf("eventlog: duplicate segment base %#x", segs[i].base)
		}
	}
	return segs, nil
}
