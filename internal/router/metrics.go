package router

import (
	"fmt"
	"net/http"
	"strconv"

	"titant/internal/telemetry"
)

// The router's Prometheus surface. GET /metrics answers with two layers
// merged into one page: the router's own series (scatter/gather
// counters, per-shard breaker and latency state, wire-tier stage
// histograms), plus a live self-scrape of every shard's /metrics page
// re-labeled with shard="<i>" — the outer topology stamps the label, so
// one scrape of the router sees the whole fleet without a separate
// scrape config per shard. Unreachable shards degrade the page (their
// series are absent and counted in titant_router_scrape_unreachable),
// never fail it: metrics must answer while the fleet is broken.

// ownMetrics renders the router-owned series.
func (rt *Router) ownMetrics() *telemetry.Expo {
	e := telemetry.NewExpo()
	e.Counter("titant_router_singles_total", "single-row requests forwarded to an owner shard", float64(rt.singles.Load()))
	e.Counter("titant_router_batches_total", "batch requests scattered across the ring", float64(rt.batches.Load()))
	e.Counter("titant_router_fanouts_total", "sub-batches dispatched by scatters", float64(rt.fanouts.Load()))
	e.Counter("titant_router_controls_total", "model/policy swaps replicated", float64(rt.controls.Load()))
	e.Counter("titant_router_errors_total", "upstream failures relayed or detected", float64(rt.errors.Load()))
	e.Counter("titant_router_retries_total", "retry attempts issued", float64(rt.retried.Load()))
	e.Counter("titant_router_hedges_total", "hedge legs launched", float64(rt.hedges.Load()))
	e.Counter("titant_router_hedge_wins_total", "hedge legs that answered first", float64(rt.hedgeWins.Load()))
	e.Counter("titant_router_degraded_items_total", "items answered with a degraded envelope", float64(rt.degraded.Load()))
	e.Counter("titant_router_deadline_exhausted_total", "calls abandoned on an exhausted caller budget", float64(rt.deadlines.Load()))
	e.Gauge("titant_router_shards", "shard ring width", float64(len(rt.shards)))
	e.Gauge("titant_router_quorum", "healthy shards /healthz requires for 200", float64(rt.quorum))

	for si := range rt.shards {
		shard := strconv.Itoa(si)
		state, opens, halfOpens, probes, failures, successes := rt.brk[si].counters()
		e.Gauge("titant_router_breaker_state", "per-shard breaker state (value is always 1)", 1, "shard", shard, "state", state)
		e.Counter("titant_router_breaker_opens_total", "breaker trips to open", float64(opens), "shard", shard)
		e.Counter("titant_router_breaker_half_opens_total", "breaker transitions to half-open", float64(halfOpens), "shard", shard)
		e.Counter("titant_router_breaker_probes_total", "half-open probes launched", float64(probes), "shard", shard)
		e.Counter("titant_router_breaker_failures_total", "shard call failures recorded by the breaker", float64(failures), "shard", shard)
		e.Counter("titant_router_breaker_successes_total", "shard call successes recorded by the breaker", float64(successes), "shard", shard)
		h := rt.lat[si]
		counts, _ := h.Snapshot()
		e.Histogram("titant_router_shard_latency_seconds", "successful shard call latency", h.Bounds(), counts, int64(h.Sum()), "shard", shard)
	}

	// Wire-tier stage histograms, same family name the engines use so a
	// stage dashboard spans tiers; the router's series carry no shard
	// label, which keeps them distinct from the re-labeled shard series.
	for _, name := range rt.tel.Endpoints() {
		et := rt.tel.Endpoint(name)
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			h := et.StageHistogram(st)
			if h.Total() == 0 {
				continue
			}
			sc, _ := h.Snapshot()
			e.Histogram("titant_stage_latency_seconds", "hot-path stage latency by endpoint",
				h.Bounds(), sc, int64(h.Sum()), "endpoint", name, "stage", st.String())
		}
	}
	return e
}

// metrics serves GET /metrics: the router's own series merged with a
// live re-labeled self-scrape of every shard's page.
func (rt *Router) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	ups := rt.fanGet(r, "/metrics", callSpec{retryable: true})
	unreachable := 0
	page, err := telemetry.ParseExpo(rt.ownMetrics().Bytes())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	for si, u := range ups {
		if u.failed() || u.status != http.StatusOK {
			rt.errors.Add(1)
			unreachable++
			continue
		}
		sc, err := telemetry.ParseExpo(u.body)
		if err != nil {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response",
				fmt.Sprintf("shard %d /metrics: %v", si, err))
			return
		}
		sc.AddLabel("shard", strconv.Itoa(si))
		if err := page.Merge(sc); err != nil {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response", err.Error())
			return
		}
	}
	un := telemetry.NewExpo()
	un.Gauge("titant_router_scrape_unreachable", "shards whose /metrics could not be scraped", float64(unreachable))
	unScrape, err := telemetry.ParseExpo(un.Bytes())
	if err == nil {
		_ = page.Merge(unScrape)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(page.Render())
}

// debugTrace serves GET /v1/debug/trace: the router's own wire-tier
// stage aggregation and slowest exemplars. Shard-side spans live on each
// shard's own /v1/debug/trace; the trace ID is the join key.
func (rt *Router) debugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	writeJSON(w, http.StatusOK, telemetry.TraceBody(rt.tel))
}
