package router

import (
	"math"
	"sort"
	"time"

	"titant/internal/telemetry"
)

// MergeStats deep-merges per-shard GET /v1/stats bodies (as decoded
// JSON, so every number is a float64) into one fleet view:
//
//   - counters (scored, alerted, ingested, cache, policy, admission,
//     shadow, eventlog throughput) sum;
//   - latency histograms sum bucket-wise — every shard server is built
//     with the same bounds — and the p50/p99 percentiles are recomputed
//     from the merged buckets, because percentiles themselves do not
//     merge;
//   - distribution statistics that cannot sum (drift PSI/KS, consumer
//     lag, fsync age) take the worst shard;
//   - derived ratios (shadow agreement, mean divergence) recompute from
//     the summed numerators and denominators;
//   - versions come from shard 0, with "version_mixed": true flagged
//     when shards disagree (mid-rollout);
//   - "shards" sums each body's own width, so a ring of sharded engines
//     reports the true total.
//
// Sections absent from every body stay absent; a section present on any
// shard merges over the bodies that carry it.
func MergeStats(bodies []map[string]interface{}) map[string]interface{} {
	if len(bodies) == 0 {
		return map[string]interface{}{}
	}
	out := map[string]interface{}{}

	// Versions: shard 0 speaks for the fleet; disagreement is flagged,
	// not hidden, so a stuck rollout is visible from the merged view.
	if v, ok := bodies[0]["version"]; ok {
		out["version"] = v
		for _, b := range bodies[1:] {
			if bv, ok := b["version"]; ok && bv != v {
				out["version_mixed"] = true
				break
			}
		}
	}

	sumKey(out, bodies, "scored")
	sumKey(out, bodies, "alerted")
	sumKey(out, bodies, "ingested")
	out["shards"] = sumOr(bodies, "shards", 1)

	// Scoring latency: merge raw buckets, recompute percentiles.
	if h := mergeHistBodies(collectMaps(bodies, "latency_hist")); h != nil {
		out["latency_hist"] = h
		p50, p99, max := histQuantiles(h)
		out["p50_us"], out["p99_us"], out["max_us"] = p50, p99, max
	} else {
		// No raw buckets (pre-sharding shard build): worst-shard fallback.
		for _, k := range []string{"p50_us", "p99_us", "max_us"} {
			maxKey(out, bodies, k)
		}
	}

	if ms := collectMaps(bodies, "user_cache"); len(ms) > 0 {
		out["user_cache"] = sumSection(ms)
	}
	if ms := collectMaps(bodies, "policy"); len(ms) > 0 {
		sec := sumSection(ms)
		sec["version"] = ms[0]["version"]
		out["policy"] = sec
	}
	if ms := collectMaps(bodies, "admission"); len(ms) > 0 {
		// Capacity fields (rate, burst, max_inflight) sum: the fleet
		// admits N shards' worth. "callers" takes the max — the same
		// caller population hits every shard, so summing would overcount.
		sec := sumSection(ms)
		sec["callers"] = maxOf(ms, "callers")
		out["admission"] = sec
	}
	if ms := collectMaps(bodies, "shadow"); len(ms) > 0 {
		sec := sumSection(ms)
		sec["challenger_version"] = ms[0]["challenger_version"]
		scored := num(sec["scored"])
		if scored > 0 {
			sec["agreement"] = num(sec["agreed"]) / scored
			var diff float64
			for _, m := range ms {
				diff += num(m["mean_divergence"]) * num(m["scored"])
			}
			sec["mean_divergence"] = diff / scored
		} else {
			sec["agreement"] = 1.0
			sec["mean_divergence"] = 0.0
		}
		out["shadow"] = sec
	}
	if ms := collectMaps(bodies, "eventlog"); len(ms) > 0 {
		sec := map[string]interface{}{}
		for _, k := range []string{"appended", "fsyncs", "bytes", "segments", "unsynced_bytes", "replayed", "append_errors"} {
			sec[k] = sumOf(ms, k)
		}
		// Offsets are per-log coordinates, meaningless fleet-wide; lag
		// and fsync age report the worst shard.
		for _, k := range []string{"max_consumer_lag", "last_fsync_age_seconds"} {
			sec[k] = maxOf(ms, k)
		}
		out["eventlog"] = sec
	}
	if ms := collectMaps(bodies, "drift"); len(ms) > 0 {
		out["drift"] = mergeDrift(ms)
	}
	if eps := collectMaps(bodies, "endpoints"); len(eps) > 0 {
		merged := map[string]interface{}{}
		for _, name := range endpointNames(eps) {
			var sub []map[string]interface{}
			for _, e := range eps {
				if m, ok := e[name].(map[string]interface{}); ok {
					sub = append(sub, m)
				}
			}
			merged[name] = mergeEndpoint(sub)
		}
		out["endpoints"] = merged
	}
	return out
}

// num reads any JSON number (or nil) as float64.
func num(v interface{}) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	default:
		return 0
	}
}

func sumKey(out map[string]interface{}, bodies []map[string]interface{}, key string) {
	present := false
	var sum float64
	for _, b := range bodies {
		if v, ok := b[key]; ok {
			present = true
			sum += num(v)
		}
	}
	if present {
		out[key] = sum
	}
}

func maxKey(out map[string]interface{}, bodies []map[string]interface{}, key string) {
	present := false
	var max float64
	for _, b := range bodies {
		if v, ok := b[key]; ok {
			present = true
			if n := num(v); n > max {
				max = n
			}
		}
	}
	if present {
		out[key] = max
	}
}

// sumOr sums key over the bodies, substituting def where absent.
func sumOr(bodies []map[string]interface{}, key string, def float64) float64 {
	var sum float64
	for _, b := range bodies {
		if v, ok := b[key]; ok {
			sum += num(v)
		} else {
			sum += def
		}
	}
	return sum
}

// collectMaps gathers the bodies' map-valued sections under key.
func collectMaps(bodies []map[string]interface{}, key string) []map[string]interface{} {
	var out []map[string]interface{}
	for _, b := range bodies {
		if m, ok := b[key].(map[string]interface{}); ok {
			out = append(out, m)
		}
	}
	return out
}

// sumSection sums every numeric field across the section instances;
// non-numeric fields keep the first instance's value.
func sumSection(ms []map[string]interface{}) map[string]interface{} {
	out := map[string]interface{}{}
	for _, m := range ms {
		for k, v := range m {
			if _, isNum := v.(float64); isNum {
				out[k] = num(out[k]) + num(v)
			} else if _, seen := out[k]; !seen {
				out[k] = v
			}
		}
	}
	return out
}

func sumOf(ms []map[string]interface{}, key string) float64 {
	var sum float64
	for _, m := range ms {
		sum += num(m[key])
	}
	return sum
}

func maxOf(ms []map[string]interface{}, key string) float64 {
	var max float64
	for _, m := range ms {
		if n := num(m[key]); n > max {
			max = n
		}
	}
	return max
}

// mergeHistBodies sums raw histogram bodies ({bounds_ns, counts,
// max_ns}) bucket-wise. Returns nil when no shard carries one or the
// bucket shapes disagree (mixed server builds) — callers fall back to
// worst-shard percentiles rather than merging incompatible buckets.
func mergeHistBodies(hs []map[string]interface{}) map[string]interface{} {
	if len(hs) == 0 {
		return nil
	}
	bounds, ok := floatSlice(hs[0]["bounds_ns"])
	if !ok {
		return nil
	}
	counts := make([]float64, len(bounds)+1)
	var maxNS float64
	for _, h := range hs {
		hb, ok := floatSlice(h["bounds_ns"])
		if !ok || len(hb) != len(bounds) {
			return nil
		}
		for i := range bounds {
			if hb[i] != bounds[i] {
				return nil
			}
		}
		hc, ok := floatSlice(h["counts"])
		if !ok || len(hc) != len(counts) {
			return nil
		}
		for i := range counts {
			counts[i] += hc[i]
		}
		if m := num(h["max_ns"]); m > maxNS {
			maxNS = m
		}
	}
	return map[string]interface{}{"bounds_ns": bounds, "counts": counts, "max_ns": maxNS}
}

// floatSlice coerces a decoded JSON array (or a native slice from an
// in-process StatsBody) to []float64.
func floatSlice(v interface{}) ([]float64, bool) {
	switch xs := v.(type) {
	case []float64:
		return xs, true
	case []interface{}:
		out := make([]float64, len(xs))
		for i, x := range xs {
			f, ok := x.(float64)
			if !ok {
				return nil, false
			}
			out[i] = f
		}
		return out, true
	case []int64:
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		return out, true
	default:
		return nil, false
	}
}

// histQuantiles reads p50/p99/max (microseconds) out of a merged raw
// histogram through telemetry.Quantile — the one quantile definition
// every surface shares, so the fleet view's merged percentiles are
// bitwise-identical to what a single engine holding all the samples
// would report.
func histQuantiles(h map[string]interface{}) (p50, p99, max float64) {
	boundsF, _ := floatSlice(h["bounds_ns"])
	countsF, _ := floatSlice(h["counts"])
	maxNS := num(h["max_ns"])
	bounds := make([]time.Duration, len(boundsF))
	for i, b := range boundsF {
		bounds[i] = time.Duration(b)
	}
	counts := make([]int64, len(countsF))
	var total int64
	for i, c := range countsF {
		counts[i] = int64(c)
		total += counts[i]
	}
	q := func(p float64) float64 {
		return float64(telemetry.Quantile(bounds, counts, total, time.Duration(maxNS), p).Microseconds())
	}
	const us = 1000
	return q(0.50), q(0.99), math.Floor(maxNS / us)
}

// mergeEndpoint merges per-endpoint latency sections, preferring the raw
// nested histogram, falling back to worst-shard percentiles.
func mergeEndpoint(ms []map[string]interface{}) map[string]interface{} {
	out := map[string]interface{}{"count": sumOf(ms, "count")}
	if h := mergeHistBodies(collectMaps(ms, "hist")); h != nil {
		p50, p99, max := histQuantiles(h)
		out["p50_us"], out["p99_us"], out["max_us"] = p50, p99, max
		out["hist"] = h
	} else {
		for _, k := range []string{"p50_us", "p99_us", "max_us"} {
			out[k] = maxOf(ms, k)
		}
	}
	return out
}

// endpointNames returns the union of endpoint keys in stable order.
func endpointNames(eps []map[string]interface{}) []string {
	seen := map[string]bool{}
	var names []string
	for _, e := range eps {
		for k := range e {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	return names
}

// mergeDrift folds the drift sections: the alert ORs, and each named
// series sums its counts while PSI/KS report the most-drifted shard.
func mergeDrift(ms []map[string]interface{}) map[string]interface{} {
	alert := false
	type agg struct {
		baseline, live, psi, ks float64
		alert                   bool
	}
	order := []string{}
	byName := map[string]*agg{}
	for _, m := range ms {
		if a, ok := m["alert"].(bool); ok && a {
			alert = true
		}
		series, ok := m["series"].([]interface{})
		if !ok {
			continue
		}
		for _, s := range series {
			sm, ok := s.(map[string]interface{})
			if !ok {
				continue
			}
			name, _ := sm["name"].(string)
			a := byName[name]
			if a == nil {
				a = &agg{}
				byName[name] = a
				order = append(order, name)
			}
			a.baseline += num(sm["baseline"])
			a.live += num(sm["live"])
			a.psi = math.Max(a.psi, num(sm["psi"]))
			a.ks = math.Max(a.ks, num(sm["ks"]))
			if sa, ok := sm["alert"].(bool); ok && sa {
				a.alert = true
			}
		}
	}
	out := []interface{}{}
	for _, name := range order {
		a := byName[name]
		out = append(out, map[string]interface{}{
			"name": name, "baseline": a.baseline, "live": a.live,
			"psi": a.psi, "ks": a.ks, "alert": a.alert,
		})
	}
	return map[string]interface{}{"alert": alert, "series": out}
}
