package router

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"titant/internal/decision"
	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/hbase"
	"titant/internal/model/lr"
	"titant/internal/ms"
	"titant/internal/rng"
	"titant/internal/txn"
)

const fleetUsers = 40

func toyBundle(t testing.TB) *ms.Bundle {
	t.Helper()
	r := rng.New(1)
	n := 2000
	m := feature.NewMatrix(n, feature.NumBasic)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		amt := r.Float64() * 2000
		m.Set(i, 0, amt)
		m.Set(i, 1, math.Log1p(amt))
		labels[i] = amt > 1200 && r.Bool(0.9)
	}
	clf := lr.Train(m, labels, lr.Config{Bins: 32, L1: 0.01, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 10, Seed: 1})
	city := feature.CityTable{Fraud: []float64{0.01, 0.2}, Share: []float64{0.9, 0.1}}
	b, err := ms.NewBundle("2017-04-10", clf, 0.5, city, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func seedTable(t testing.TB) *hbase.Table {
	t.Helper()
	tab, err := hbase.Open(hbase.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tab.Close() })
	up := &ms.Uploader{Table: tab}
	for i := txn.UserID(0); i < fleetUsers; i++ {
		u := txn.User{ID: i, Age: uint8(20 + int(i)%40), HomeCity: uint16(i % 2), AvgAmount: float32(10 + i)}
		if err := up.PutUser(&u, feature.UserStats{OutCount: float64(i % 10)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// fleet is n shard servers behind a router, plus an identically built
// unsharded reference. Every shard holds the full replicated feature
// table (the wire tier's stance: T+1 artifacts replicate, hot state
// partitions), so verdicts must match the reference exactly.
type fleet struct {
	rt      *Router
	servers []*ms.Server
	web     []*httptest.Server
	ref     *ms.Server
}

func newFleet(t *testing.T, n int, shardOpts func() []ms.Option, rtOpts ...Option) *fleet {
	t.Helper()
	b := toyBundle(t)
	f := &fleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := ms.New(seedTable(t), b, shardOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		f.servers = append(f.servers, srv)
		f.web = append(f.web, hs)
		urls[i] = hs.URL
	}
	ref, err := ms.New(seedTable(t), b, shardOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	f.ref = ref
	rt, err := New(urls, rtOpts...)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	return f
}

func streamOpts() []ms.Option {
	st := stream.New(stream.WithCities(4), stream.WithWindow(8, 86400))
	return []ms.Option{ms.WithStreamAggregates(st), ms.WithUserCache(128)}
}

func fleetTxns(n int, seed uint64) []ms.TxnRequest {
	r := rng.New(seed)
	reqs := make([]ms.TxnRequest, n)
	for i := range reqs {
		reqs[i] = ms.TxnRequest{
			ID: int64(i + 1), Day: 1, Sec: int32(i),
			From: int32(r.Intn(fleetUsers)), To: int32(r.Intn(fleetUsers)),
			Amount: float32(r.Float64() * 2000), TransCity: uint16(r.Intn(4)),
		}
	}
	return reqs
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w, w.Body.Bytes()
}

func getJSON(t *testing.T, h http.Handler, path string, out interface{}) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: %v (%s)", path, err, w.Body.String())
		}
	}
	return w.Code
}

// TestRouterScoreBatchParity: a batch through the router returns the
// reference engine's verdicts, bit for bit, in input order.
func TestRouterScoreBatchParity(t *testing.T) {
	f := newFleet(t, 3, streamOpts)
	h := f.rt.Handler()
	reqs := fleetTxns(150, 7)

	w, body := postJSON(t, h, "/v1/score/batch", map[string]interface{}{"transactions": reqs})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, body)
	}
	var resp struct {
		Verdicts []ms.Verdict `json:"verdicts"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Verdicts) != len(reqs) {
		t.Fatalf("%d verdicts for %d transactions", len(resp.Verdicts), len(reqs))
	}

	txns := make([]txn.Transaction, len(reqs))
	for i := range reqs {
		txns[i] = reqs[i].Txn()
	}
	want, err := f.ref.ScoreBatch(context.Background(), txns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		got := resp.Verdicts[i]
		if got.TxnID != want[i].TxnID {
			t.Fatalf("verdict %d out of order: txn %d, want %d", i, got.TxnID, want[i].TxnID)
		}
		// JSON round-trips float64 exactly (shortest round-trip
		// encoding), so equality here is bitwise.
		if got.Score != want[i].Score || got.Fraud != want[i].Fraud {
			t.Fatalf("verdict %d: router %v != reference %v", i, got.Score, want[i].Score)
		}
	}

	// The batch really scattered: every shard scored some of it.
	var sum int64
	for si, srv := range f.servers {
		c := srv.Latency().Count
		if c == 0 {
			t.Fatalf("shard %d scored nothing", si)
		}
		sum += c
	}
	if sum != int64(len(reqs)) {
		t.Fatalf("shards scored %d total, want %d", sum, len(reqs))
	}
}

// TestRouterSingleRouting: single-row routes forward whole to the
// sender's owner shard.
func TestRouterSingleRouting(t *testing.T) {
	f := newFleet(t, 3, streamOpts)
	h := f.rt.Handler()
	for _, req := range fleetTxns(30, 9) {
		w, body := postJSON(t, h, "/v1/score", req)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, body)
		}
		var v ms.Verdict
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		tr := req.Txn()
		want, err := f.ref.Score(context.Background(), &tr)
		if err != nil {
			t.Fatal(err)
		}
		if v.Score != want.Score {
			t.Fatalf("txn %d: router %v != reference %v", req.ID, v.Score, want.Score)
		}
		owner := ms.ShardOf(txn.UserID(req.From), 3)
		for si, srv := range f.servers {
			if c := srv.Latency().Count; (si == owner) != (c > 0) {
				t.Fatalf("txn %d (owner %d): shard %d scored %d", req.ID, owner, si, c)
			}
		}
		// Reset per-iteration accounting by checking only the first txn.
		break
	}
}

// TestRouterIngestPartition: ingest batches split by owner, each shard's
// private window only absorbing its own users' traffic.
func TestRouterIngestPartition(t *testing.T) {
	f := newFleet(t, 3, streamOpts)
	h := f.rt.Handler()
	reqs := fleetTxns(120, 11)
	ingest := make([]map[string]interface{}, len(reqs))
	for i, r := range reqs {
		ingest[i] = map[string]interface{}{
			"id": r.ID, "day": r.Day, "sec": r.Sec, "from": r.From, "to": r.To,
			"amount": r.Amount, "trans_city": r.TransCity, "fraud": i%10 == 0,
		}
	}
	w, body := postJSON(t, h, "/v1/ingest/batch", map[string]interface{}{"transactions": ingest})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, body)
	}
	var ir struct {
		Ingested int `json:"ingested"`
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != len(reqs) {
		t.Fatalf("merged ingested = %d, want %d", ir.Ingested, len(reqs))
	}
	var total int64
	for si, srv := range f.servers {
		c := srv.Ingested()
		if c == 0 || c == int64(len(reqs)) {
			t.Fatalf("shard %d ingested %d of %d: traffic did not partition", si, c, len(reqs))
		}
		total += c
	}
	if total != int64(len(reqs)) {
		t.Fatalf("shards ingested %d total, want %d", total, len(reqs))
	}
}

// TestRouterControlReplication: POST /v1/models and /v1/policy land on
// every shard; GET reads shard 0.
func TestRouterControlReplication(t *testing.T) {
	pol, err := decision.Parse([]byte(`{
	  "version": "pol-1",
	  "scenarios": {"default": {"bands": [
	    {"min": 0, "max": 0.5, "action": "approve"},
	    {"min": 0.5, "max": 1, "action": "deny"}
	  ]}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	f := newFleet(t, 3, func() []ms.Option {
		return append(streamOpts(), ms.WithPolicy(pol))
	})
	h := f.rt.Handler()

	next := []byte(`{
	  "version": "pol-2",
	  "scenarios": {"default": {"bands": [
	    {"min": 0, "max": 0.9, "action": "approve"},
	    {"min": 0.9, "max": 1, "action": "deny"}
	  ]}}
	}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/policy", bytes.NewReader(next))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("policy swap: status %d: %s", w.Code, w.Body.String())
	}
	for si, srv := range f.servers {
		if v := srv.PolicyVersion(); v != "pol-2" {
			t.Fatalf("shard %d policy %q after replicated swap", si, v)
		}
	}

	var doc map[string]interface{}
	if code := getJSON(t, h, "/v1/policy", &doc); code != http.StatusOK {
		t.Fatalf("GET /v1/policy: %d", code)
	}
	if doc["version"] != "pol-2" {
		t.Fatalf("GET /v1/policy version = %v", doc["version"])
	}

	// Model swap replicates the same way.
	nb := *toyBundle(t)
	nb.Version = "2017-04-17"
	raw, err := nb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/models", bytes.NewReader(raw))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("model swap: status %d: %s", w.Code, w.Body.String())
	}
	for si, srv := range f.servers {
		if v := srv.BundleVersion(); v != "2017-04-17" {
			t.Fatalf("shard %d bundle %q after replicated swap", si, v)
		}
	}
}

// TestRouterStatsMerge: the merged stats body sums the fleet and carries
// the router section.
func TestRouterStatsMerge(t *testing.T) {
	f := newFleet(t, 3, streamOpts)
	h := f.rt.Handler()
	reqs := fleetTxns(90, 13)
	if w, body := postJSON(t, h, "/v1/score/batch", map[string]interface{}{"transactions": reqs}); w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, body)
	}

	var stats map[string]interface{}
	if code := getJSON(t, h, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", code)
	}
	if got := stats["scored"].(float64); got != float64(len(reqs)) {
		t.Fatalf("merged scored = %v, want %d", got, len(reqs))
	}
	if got := stats["shards"].(float64); got != 3 {
		t.Fatalf("merged shards = %v, want 3", got)
	}
	hist := stats["latency_hist"].(map[string]interface{})
	counts, _ := floatSlice(hist["counts"])
	var sum float64
	for _, c := range counts {
		sum += c
	}
	if sum != float64(len(reqs)) {
		t.Fatalf("merged histogram holds %v samples, want %d", sum, len(reqs))
	}
	cache := stats["user_cache"].(map[string]interface{})
	if cache["capacity"].(float64) != 3*128 {
		t.Fatalf("merged cache capacity = %v, want %d", cache["capacity"], 3*128)
	}
	router := stats["router"].(map[string]interface{})
	if router["batches"].(float64) < 1 || len(router["shards"].([]interface{})) != 3 {
		t.Fatalf("router section = %v", router)
	}
}

// TestRouterHealth: all-ok fleets answer 200 "ok"; losing one of three
// shards keeps the fleet load-balancer-green — 200 "degraded" naming the
// sick shard — because a quorum can still serve; losing a second drops
// below quorum and only then does the router answer 503.
func TestRouterHealth(t *testing.T) {
	f := newFleet(t, 3, streamOpts, WithRetries(0, 0, 0))
	h := f.rt.Handler()
	var health map[string]interface{}
	if code := getJSON(t, h, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthy fleet: %d (%v)", code, health)
	}
	if health["status"] != "ok" || health["shards"].(float64) != 3 || health["quorum"].(float64) != 2 {
		t.Fatalf("healthy fleet body = %v", health)
	}

	f.web[1].Close()
	if code := getJSON(t, h, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("one shard down with quorum up: %d, want 200", code)
	}
	if health["status"] != "degraded" || health["healthy"].(float64) != 2 {
		t.Fatalf("degraded fleet body = %v", health)
	}
	sick := health["shard_status"].([]interface{})[1].(map[string]interface{})
	if sick["status"] != "unreachable" {
		t.Fatalf("shard 1 status = %v", sick["status"])
	}

	f.web[2].Close()
	if code := getJSON(t, h, "/healthz", &health); code != http.StatusServiceUnavailable {
		t.Fatalf("below quorum: %d, want 503", code)
	}
	if health["status"] != "unavailable" || health["healthy"].(float64) != 1 {
		t.Fatalf("below-quorum body = %v", health)
	}
}

// TestRouterErrorRelay: a shard's typed refusal (here: batch too large)
// passes through with status and envelope intact.
func TestRouterErrorRelay(t *testing.T) {
	f := newFleet(t, 2, func() []ms.Option {
		return append(streamOpts(), ms.WithMaxBatch(3))
	})
	h := f.rt.Handler()
	// 8 txns from one user: all land on one shard, exceeding its limit.
	reqs := make([]ms.TxnRequest, 8)
	for i := range reqs {
		reqs[i] = ms.TxnRequest{ID: int64(i + 1), From: 5, To: 6, Amount: 10}
	}
	w, body := postJSON(t, h, "/v1/score/batch", map[string]interface{}{"transactions": reqs})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", w.Code, body)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "batch_too_large" {
		t.Fatalf("envelope %s (err %v)", body, err)
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := New([]string{"http://a:1", " "}); err == nil {
		t.Fatal("blank shard URL accepted")
	}
	rt, err := New([]string{"localhost:8081", "http://localhost:8082/"})
	if err != nil {
		t.Fatal(err)
	}
	if rt.shards[0] != "http://localhost:8081" || rt.shards[1] != "http://localhost:8082" {
		t.Fatalf("normalised shards = %v", rt.shards)
	}
	if rt.Shards() != 2 {
		t.Fatalf("Shards() = %d", rt.Shards())
	}
}

func TestRouterRejectsMalformedBatch(t *testing.T) {
	f := newFleet(t, 2, streamOpts)
	h := f.rt.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/score/batch", bytes.NewReader([]byte(`{"transactions": [{"from": }]}`)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
}
