package router

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"titant/internal/rng"
	"titant/internal/telemetry"
)

// The resilience plane: every proxied shard call runs through a
// per-shard circuit breaker, a bounded retry loop with full-jitter
// exponential backoff (idempotent ops only), and a deadline budget that
// guarantees the gather finishes before the caller gives up. Single-
// shard reads can additionally hedge: a second identical request after a
// p99-derived delay, first response wins, loser cancelled.

// Typed internal failures the classifier maps to wire codes.
var (
	// errCircuitOpen marks a call refused locally because the shard's
	// breaker is open: the shard was not contacted at all.
	errCircuitOpen = errors.New("router: circuit open")
	// errBudgetExhausted marks a call abandoned because the caller's
	// deadline budget ran out before (another) attempt could start.
	errBudgetExhausted = errors.New("router: deadline budget exhausted")
)

// BreakerConfig tunes the per-shard circuit breakers. Zero fields take
// the defaults.
type BreakerConfig struct {
	// ConsecutiveFails trips the breaker after this many consecutive
	// failures (default 5).
	ConsecutiveFails int
	// ErrorRate trips the breaker when the failure fraction over a full
	// Window of outcomes reaches this level (default 0.5).
	ErrorRate float64
	// Window is the sliding outcome window the error rate is computed
	// over (default 20).
	Window int
	// Cooldown is how long an open breaker waits before letting one
	// half-open probe through (default 1s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFails <= 0 {
		c.ConsecutiveFails = 5
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.5
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Breaker states. A breaker is closed (traffic flows, outcomes are
// recorded), open (calls fail fast without touching the shard), or
// half-open (exactly one probe in flight decides: success closes,
// failure re-opens).
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

func breakerStateName(s int) string {
	switch s {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half_open"
	}
	return "closed"
}

// breaker is one shard's circuit breaker. A "failure" is a transport
// error or a 5xx — a shard that answers 4xx is healthy and refusing,
// which must not poison its circuit.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    int
	consec   int    // consecutive failures while closed
	ring     []bool // sliding outcome window, true = failure
	ringN    int    // outcomes recorded (saturates at len(ring))
	ringIdx  int
	fails    int // failures currently inside the ring
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	// Lifetime counters for the stats section.
	opens     int64
	halfOpens int64
	probes    int64
	failures  int64
	successes int64
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, now: now, ring: make([]bool, cfg.Window)}
}

// allow reports whether a call may proceed. probe is true when the call
// is the half-open probe; the caller must hand it back via record (or
// cancelProbe if the call never launched).
func (b *breaker) allow() (probe, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return false, true
	case brOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = brHalfOpen
		b.halfOpens++
		b.probing = false
	}
	// Half-open: one probe at a time.
	if b.probing {
		return false, false
	}
	b.probing = true
	b.probes++
	return true, true
}

// cancelProbe releases a probe slot for a call that never launched.
func (b *breaker) cancelProbe(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	if b.state == brHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// trip opens the breaker. Caller holds b.mu.
func (b *breaker) trip() {
	b.state = brOpen
	b.openedAt = b.now()
	b.opens++
	b.probing = false
	b.consec = 0
	b.ringN, b.ringIdx, b.fails = 0, 0, 0
}

// record lands one call outcome.
func (b *breaker) record(fail, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fail {
		b.failures++
	} else {
		b.successes++
	}
	switch b.state {
	case brHalfOpen:
		if probe {
			b.probing = false
		}
		if fail {
			b.trip()
		} else {
			b.state = brClosed
		}
	case brClosed:
		if fail {
			b.consec++
		} else {
			b.consec = 0
		}
		if b.ringN == len(b.ring) && b.ring[b.ringIdx] {
			b.fails--
		}
		b.ring[b.ringIdx] = fail
		if fail {
			b.fails++
		}
		b.ringIdx = (b.ringIdx + 1) % len(b.ring)
		if b.ringN < len(b.ring) {
			b.ringN++
		}
		if b.consec >= b.cfg.ConsecutiveFails ||
			(b.ringN == len(b.ring) && float64(b.fails) >= b.cfg.ErrorRate*float64(b.ringN)) {
			b.trip()
		}
	}
	// Open: a straggler from before the trip carries no new information.
}

// state returns the current state, advancing open→half-open if the
// cooldown has elapsed (so observers see the truth, not a stale "open").
func (b *breaker) currentState() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return brHalfOpen
	}
	return b.state
}

// counters snapshots the breaker's state name and lifetime counters
// (shared by the stats section and the /metrics exposition).
func (b *breaker) counters() (state string, opens, halfOpens, probes, failures, successes int64) {
	state = breakerStateName(b.currentState())
	b.mu.Lock()
	defer b.mu.Unlock()
	return state, b.opens, b.halfOpens, b.probes, b.failures, b.successes
}

// snapshot builds the breaker's stats body.
func (b *breaker) snapshot(shard int, p99 time.Duration) map[string]interface{} {
	state, opens, halfOpens, probes, failures, successes := b.counters()
	return map[string]interface{}{
		"shard":      shard,
		"state":      state,
		"opens":      opens,
		"half_opens": halfOpens,
		"probes":     probes,
		"failures":   failures,
		"successes":  successes,
		"p99_us":     p99.Microseconds(),
	}
}

// lockedRand is a mutex-guarded seeded RNG for backoff jitter. A fixed
// seed keeps chaos runs reproducible; jitter decorrelates retries within
// a run, which needs no cross-run entropy.
type lockedRand struct {
	mu sync.Mutex
	r  *rng.RNG
}

func newLockedRand(seed uint64) *lockedRand { return &lockedRand{r: rng.New(seed)} }

func (lr *lockedRand) Float64() float64 {
	lr.mu.Lock()
	v := lr.r.Float64()
	lr.mu.Unlock()
	return v
}

// backoffWait sleeps the full-jitter exponential backoff before retry
// number `attempt` (1-based), bounded by the deadline: it returns false
// when there is no room left to retry (the caller should give up with
// the last failure rather than blow the budget sleeping).
func (rt *Router) backoffWait(ctx context.Context, attempt int, deadline time.Time) bool {
	max := rt.backoff << uint(attempt-1)
	if max > rt.backoffCap {
		max = rt.backoffCap
	}
	d := time.Duration(rt.rnd.Float64() * float64(max))
	if !rt.now().Add(d).Before(deadline) {
		return false
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// resilientCall drives one logical shard call through the breaker and
// the retry loop. Non-retryable specs get exactly one attempt;
// retryable specs (idempotent ops) get up to 1+retries, each behind a
// fresh breaker check so a circuit that opens mid-loop stops the
// hammering immediately — and one that half-opens mid-loop lets the
// retry double as the probe.
func (rt *Router) resilientCall(ctx context.Context, src *http.Request, deadline time.Time, spec callSpec) upstream {
	attempts := 1
	if spec.retryable && rt.retries > 0 {
		attempts += rt.retries
	}
	var last upstream
	for a := 0; a < attempts; a++ {
		if a > 0 {
			bstart := rt.now()
			if !rt.backoffWait(ctx, a, deadline) {
				break
			}
			if spec.spans != nil {
				spec.spans[telemetry.StageRetry] += rt.now().Sub(bstart)
			}
			rt.retried.Add(1)
		}
		var probe, ok bool
		if !spec.noBreaker {
			probe, ok = rt.brk[spec.shard].allow()
			if !ok {
				last = upstream{err: errCircuitOpen}
				continue
			}
		}
		start := rt.now()
		u := rt.attempt(ctx, src, deadline, spec)
		if errors.Is(u.err, errBudgetExhausted) {
			if !spec.noBreaker {
				// Never launched: not evidence about the shard.
				rt.brk[spec.shard].cancelProbe(probe)
			}
			rt.deadlines.Add(1)
			return u
		}
		fail := u.err != nil || u.status >= 500
		if !spec.noBreaker {
			rt.brk[spec.shard].record(fail, probe)
		}
		if !fail {
			rt.lat[spec.shard].Record(rt.now().Sub(start))
			return u
		}
		last = u
	}
	return last
}

// hedgedCall wraps resilientCall with tail-latency hedging for
// idempotent single-shard reads: if the first leg has not answered
// within the shard's p99 (floored at the configured hedge delay), a
// second identical leg launches; the first *success* wins and the loser
// is cancelled. Failures do not hedge — a leg that exhausted its retries
// reports, it does not spawn copies.
func (rt *Router) hedgedCall(ctx context.Context, src *http.Request, deadline time.Time, spec callSpec) upstream {
	if rt.hedgeFloor <= 0 || !spec.hedged {
		return rt.resilientCall(ctx, src, deadline, spec)
	}
	delay := rt.lat[spec.shard].Quantile(0.99)
	if delay < rt.hedgeFloor {
		delay = rt.hedgeFloor
	}
	if rem := deadline.Sub(rt.now()); delay > rem/2 {
		delay = rem / 2
	}
	type legResult struct {
		u   upstream
		leg int
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the losing leg
	ch := make(chan legResult, 2)
	// Each leg records into its own span buffer — the two legs run
	// concurrently, so they must not share the caller's. The winner's
	// retry time folds back into the caller's spans on return.
	parent := spec.spans
	var legSpans [2]telemetry.Spans
	launch := func(leg int) {
		s := spec
		s.spans = &legSpans[leg]
		go func() { ch <- legResult{rt.resilientCall(cctx, src, deadline, s), leg} }()
	}
	merge := func(leg int) {
		if parent != nil {
			parent[telemetry.StageRetry] += legSpans[leg][telemetry.StageRetry]
		}
	}
	launch(0)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, pending := 1, 1
	var firstFail *upstream
	firstFailLeg := 0
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				launched++
				pending++
				rt.hedges.Add(1)
				if parent != nil {
					parent[telemetry.StageHedge] = delay
				}
				launch(1)
			}
		case r := <-ch:
			pending--
			if fail := r.u.err != nil || r.u.status >= 500; !fail {
				if r.leg == 1 {
					rt.hedgeWins.Add(1)
				}
				merge(r.leg)
				return r.u
			}
			if firstFail == nil {
				firstFail = &r.u
				firstFailLeg = r.leg
			}
			if pending == 0 {
				// Both legs failed — or the only leg failed before the
				// hedge fired: don't hedge a failure, report it.
				merge(firstFailLeg)
				return *firstFail
			}
		}
	}
}
