// Package router is the scatter/gather tier that lifts the in-process
// shard split over the wire: a stateless daemon owning no model, no
// table and no window, only the hash ring. It fans the v1 batch routes
// out to shard servers with ms.ShardOf — the same jump hash the
// in-process engine partitions by — merges the responses in input order,
// replicates control-plane swaps (models, policy) to every shard, and
// folds the fleet's stats and health into single bodies.
//
// Shard servers are plain `titant serve` processes: each carries the
// full read-only feature table (replicated T+1 artifacts are cheap to
// copy) while the hot user-keyed state — user cache, stream window,
// event log — partitions naturally because each server only ever sees
// its owners' traffic.
//
// Partial failure is the steady state, and every proxied call runs
// through the resilience plane (see resilience.go): a deadline budget
// propagated from the caller's X-Deadline-Ms, bounded full-jitter
// retries for idempotent ops, a circuit breaker per shard, and optional
// tail-latency hedging for single-shard reads. Delivery semantics on
// the data plane stay at-most-once for ingest (no retry unless the
// caller sends X-Idempotency-Key); score and decide are read-only and
// retry freely. When a shard stays unreachable the router degrades
// rather than fails: batch responses carry per-item typed errors
// (ms.CodeShardUnavailable) and decide items fall back to a configured
// fail-closed action, so a verdict always arrives and is never silently
// wrong.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"titant/internal/ms"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// Request-body ceilings, mirroring the shard servers' own limits: the
// router never buffers more than a shard would accept.
const (
	maxSingleBytes  = 1 << 20
	maxBatchBytes   = 64 << 20
	maxControlBytes = 64 << 20
)

// Headers the resilience plane acts on.
const (
	// HeaderDeadline carries the caller's remaining budget in
	// milliseconds; the router re-propagates the per-attempt remainder
	// downstream so a shard never works past the caller's patience.
	HeaderDeadline = "X-Deadline-Ms"
	// HeaderIdempotencyKey opts an ingest request into retries: the
	// caller asserts replays are safe to deduplicate on its side.
	HeaderIdempotencyKey = "X-Idempotency-Key"
)

// Option configures a Router.
type Option func(*Router)

// WithTimeout bounds each proxied shard attempt (default 2s). Retries
// get a fresh attempt timeout each, inside the overall budget.
func WithTimeout(d time.Duration) Option {
	return func(rt *Router) {
		if d > 0 {
			rt.perTry = d
		}
	}
}

// WithBudget sets the default overall request budget used when the
// caller sends no X-Deadline-Ms (default 10s), and the gather margin
// reserved from every budget for merging (default 50ms).
func WithBudget(budget, margin time.Duration) Option {
	return func(rt *Router) {
		if budget > 0 {
			rt.budget = budget
		}
		if margin > 0 {
			rt.margin = margin
		}
	}
}

// WithRetries sets the retry budget for idempotent calls (default 2,
// i.e. up to 3 attempts) and the full-jitter backoff base/cap
// (defaults 25ms/250ms). retries 0 disables retrying.
func WithRetries(retries int, base, cap time.Duration) Option {
	return func(rt *Router) {
		if retries >= 0 {
			rt.retries = retries
		}
		if base > 0 {
			rt.backoff = base
		}
		if cap > 0 {
			rt.backoffCap = cap
		}
	}
}

// WithBreaker tunes the per-shard circuit breakers.
func WithBreaker(cfg BreakerConfig) Option {
	return func(rt *Router) { rt.brkCfg = cfg }
}

// WithHedge enables tail-latency hedging for single-shard reads: a
// second identical request launches if the first has not answered
// within max(floor, shard p99); the first success wins and the loser is
// cancelled. floor <= 0 disables hedging (the default).
func WithHedge(floor time.Duration) Option {
	return func(rt *Router) { rt.hedgeFloor = floor }
}

// WithFallbackAction sets the action degraded decide items carry
// (default ms.FallbackActionReview, the fail-closed stance).
func WithFallbackAction(action string) Option {
	return func(rt *Router) { rt.fallback = action }
}

// WithQuorum sets how many healthy shards /healthz needs to answer 200
// (default: a majority, n/2+1). Below quorum the fleet reports 503.
func WithQuorum(q int) Option {
	return func(rt *Router) { rt.quorum = q }
}

// WithTransport swaps the underlying HTTP transport — the seam the
// faultinject chaos layer plugs into.
func WithTransport(t http.RoundTripper) Option {
	return func(rt *Router) { rt.client.Transport = t }
}

// WithSeed seeds the backoff-jitter RNG (default 1), keeping chaos runs
// reproducible end to end.
func WithSeed(seed uint64) Option {
	return func(rt *Router) { rt.seed = seed }
}

// Router fans v1 traffic across a fixed shard ring.
type Router struct {
	shards []string // base URLs, index = shard number
	client *http.Client

	// Resilience-plane tuning (see the Option funcs for semantics).
	perTry     time.Duration
	budget     time.Duration
	margin     time.Duration
	retries    int
	backoff    time.Duration
	backoffCap time.Duration
	hedgeFloor time.Duration
	fallback   string
	quorum     int
	brkCfg     BreakerConfig
	seed       uint64

	brk []*breaker
	lat []*telemetry.Histogram // successful per-shard call latency, feeds the hedge delay
	rnd *lockedRand
	now func() time.Time

	// Observability plane: the trace-ID minter for requests arriving
	// without an X-Trace-Id, and the per-endpoint stage span tracker
	// behind /v1/debug/trace and the router's /metrics page.
	minter *telemetry.Minter
	tel    *telemetry.Tracker

	// Observability counters for the /v1/stats "router" section.
	singles   atomic.Int64 // single-row requests forwarded to one owner
	batches   atomic.Int64 // batch requests scattered
	fanouts   atomic.Int64 // sub-batches dispatched by scatters
	controls  atomic.Int64 // model/policy swaps replicated
	errors    atomic.Int64 // upstream failures relayed or detected
	retried   atomic.Int64 // retry attempts issued
	hedges    atomic.Int64 // hedge legs launched
	hedgeWins atomic.Int64 // hedge legs that answered first
	degraded  atomic.Int64 // items answered with a degraded envelope
	deadlines atomic.Int64 // calls abandoned on an exhausted caller budget
}

// New builds a router over the given shard base URLs (e.g.
// "http://10.0.0.1:8080"). Order is identity: index i is shard i of
// len(shards), and must stay stable across router restarts or users
// would re-partition silently.
func New(shards []string, opts ...Option) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("router: no shards")
	}
	cleaned := make([]string, len(shards))
	for i, s := range shards {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" {
			return nil, fmt.Errorf("router: empty shard URL at index %d", i)
		}
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		cleaned[i] = s
	}
	rt := &Router{
		shards:     cleaned,
		client:     &http.Client{},
		perTry:     2 * time.Second,
		budget:     10 * time.Second,
		margin:     50 * time.Millisecond,
		retries:    2,
		backoff:    25 * time.Millisecond,
		backoffCap: 250 * time.Millisecond,
		fallback:   ms.FallbackActionReview,
		seed:       1,
		now:        time.Now,
	}
	for _, o := range opts {
		o(rt)
	}
	fb, err := ms.ParseFallbackAction(rt.fallback)
	if err != nil {
		return nil, err
	}
	rt.fallback = fb
	if rt.quorum < 0 || rt.quorum > len(cleaned) {
		return nil, fmt.Errorf("router: quorum %d out of range for %d shards", rt.quorum, len(cleaned))
	}
	if rt.quorum == 0 {
		rt.quorum = len(cleaned)/2 + 1
	}
	rt.rnd = newLockedRand(rt.seed)
	rt.brk = make([]*breaker, len(cleaned))
	rt.lat = make([]*telemetry.Histogram, len(cleaned))
	for i := range cleaned {
		rt.brk[i] = newBreaker(rt.brkCfg, rt.now)
		rt.lat[i] = telemetry.NewHistogram(nil)
	}
	rt.minter = telemetry.NewMinter(rt.seed)
	rt.tel = telemetry.NewTracker([]string{
		"score", "decide", "ingest", "score_batch", "decide_batch", "ingest_batch",
	}, 0)
	return rt, nil
}

// Shards returns the ring width.
func (rt *Router) Shards() int { return len(rt.shards) }

// ownerShard returns the index of the shard owning user u.
func (rt *Router) ownerShard(u txn.UserID) int {
	return ms.ShardOf(u, len(rt.shards))
}

// Handler returns the router's mux: the shard servers' v1 surface, one
// hop up.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", rt.single)
	mux.HandleFunc("/v1/decide", rt.single)
	mux.HandleFunc("/v1/ingest", rt.single)
	mux.HandleFunc("/v1/score/batch", func(w http.ResponseWriter, r *http.Request) {
		rt.batch(w, r, "verdicts")
	})
	mux.HandleFunc("/v1/decide/batch", func(w http.ResponseWriter, r *http.Request) {
		rt.batch(w, r, "decisions")
	})
	mux.HandleFunc("/v1/ingest/batch", func(w http.ResponseWriter, r *http.Request) {
		rt.batch(w, r, "")
	})
	mux.HandleFunc("/v1/models", rt.control)
	mux.HandleFunc("/v1/policy", rt.control)
	mux.HandleFunc("/v1/stats", rt.stats)
	mux.HandleFunc("/v1/debug/trace", rt.debugTrace)
	mux.HandleFunc("/metrics", rt.metrics)
	mux.HandleFunc("/healthz", rt.healthz)
	return rt.traceMiddleware(mux)
}

// traceMiddleware adopts the caller's X-Trace-Id (minting one when the
// header is absent or malformed), echoes it on the response, rewrites it
// onto the inbound request so forwardHeaders propagates one consistent
// ID to every shard attempt, and carries it in the request context for
// span observation.
func (rt *Router) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := telemetry.ParseTraceID(r.Header.Get(telemetry.TraceHeader))
		if !ok {
			id = rt.minter.Mint()
		}
		hex := id.String()
		w.Header().Set(telemetry.TraceHeader, hex)
		r.Header.Set(telemetry.TraceHeader, hex)
		next.ServeHTTP(w, r.WithContext(telemetry.WithTrace(r.Context(), id)))
	})
}

// ListenAndServe serves the router on addr with the shard servers'
// graceful-shutdown contract.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	return ms.ListenAndServe(ctx, addr, rt.Handler())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	e := map[string]string{"code": code, "message": msg}
	// The trace middleware stamps X-Trace-Id on the response header
	// before any handler runs; fold it into the envelope so error bodies
	// are greppable even when the caller dropped the headers.
	if id := w.Header().Get(telemetry.TraceHeader); id != "" {
		e["trace_id"] = id
	}
	_ = json.NewEncoder(w).Encode(map[string]interface{}{"error": e})
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// forwardHeaders copies the request headers shard servers act on.
// X-Caller rides through so per-caller admission quotas hold across the
// wire tier; X-Idempotency-Key rides through so shards (and the retry
// classifier) see the caller's dedup assertion; X-Trace-Id (rewritten by
// the trace middleware to the adopted-or-minted ID) rides through so one
// trace names a verdict's whole path across tiers — retries and hedge
// legs included, since every attempt copies from the same source
// request. X-Deadline-Ms is NOT copied — the router re-derives it per
// attempt from the remaining budget.
func forwardHeaders(dst *http.Request, src *http.Request) {
	for _, k := range []string{"Content-Type", "Authorization", "X-Caller", HeaderIdempotencyKey, telemetry.TraceHeader} {
		if v := src.Header.Get(k); v != "" {
			dst.Header.Set(k, v)
		}
	}
}

// upstream is one proxied shard response, fully buffered.
type upstream struct {
	status int
	header http.Header
	body   []byte
	err    error // transport failure (no response)
}

// failed reports whether the upstream is a transport failure or 5xx —
// the failure class that counts against breakers and triggers
// degradation. 4xx means the shard is healthy and refusing.
func (u upstream) failed() bool { return u.err != nil || u.status >= 500 }

// callSpec describes one logical shard call for the resilience plane.
type callSpec struct {
	method string
	path   string
	body   []byte
	shard  int
	// retryable marks idempotent ops (score/decide/stats/healthz, and
	// ingest only with an idempotency key) eligible for the retry loop.
	retryable bool
	// hedged marks single-shard reads eligible for tail-latency hedging.
	hedged bool
	// noBreaker bypasses the circuit breaker entirely (health probes
	// must tell the truth, not echo the breaker's opinion).
	noBreaker bool
	// spans, when set, accumulates the call's retry-backoff and hedge
	// stage durations. Each concurrent call (scatter goroutine, hedge
	// leg) must have its own buffer; the handler folds them together.
	spans *telemetry.Spans
}

// attempt issues one HTTP attempt for spec, bounded by the smaller of
// the per-try timeout and the remaining deadline budget, propagating
// the remainder downstream as X-Deadline-Ms.
func (rt *Router) attempt(ctx context.Context, src *http.Request, deadline time.Time, spec callSpec) upstream {
	rem := deadline.Sub(rt.now())
	if rem <= 0 {
		return upstream{err: errBudgetExhausted}
	}
	per := rt.perTry
	clamped := false
	if per <= 0 || rem < per {
		per = rem
		clamped = true
	}
	actx, cancel := context.WithTimeout(ctx, per)
	defer cancel()
	var rd io.Reader
	if spec.body != nil {
		rd = bytes.NewReader(spec.body)
	}
	req, err := http.NewRequestWithContext(actx, spec.method, rt.shards[spec.shard]+spec.path, rd)
	if err != nil {
		return upstream{err: err}
	}
	forwardHeaders(req, src)
	req.Header.Set(HeaderDeadline, strconv.FormatInt(per.Milliseconds(), 10))
	resp, err := rt.client.Do(req)
	if err != nil {
		// A timeout on an attempt that was clamped to the remaining
		// budget IS the budget running out, not the shard being slow.
		if clamped && errors.Is(err, context.DeadlineExceeded) {
			return upstream{err: errBudgetExhausted}
		}
		if ctx.Err() != nil && deadline.Sub(rt.now()) <= 0 {
			return upstream{err: errBudgetExhausted}
		}
		return upstream{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxControlBytes))
	if err != nil {
		return upstream{err: err}
	}
	return upstream{status: resp.StatusCode, header: resp.Header, body: data}
}

// requestBudget derives this request's work deadline: the caller's
// X-Deadline-Ms (capped by the router's own budget) minus the gather
// margin, so merging finishes before the caller hangs up. The margin
// never eats more than half the budget.
func (rt *Router) requestBudget(r *http.Request) (context.Context, context.CancelFunc, time.Time) {
	budget := rt.budget
	if h := r.Header.Get(HeaderDeadline); h != "" {
		if msv, err := strconv.ParseInt(h, 10, 64); err == nil && msv > 0 {
			if d := time.Duration(msv) * time.Millisecond; d < budget {
				budget = d
			}
		}
	}
	work := budget - rt.margin
	if work < budget/2 {
		work = budget / 2
	}
	deadline := rt.now().Add(work)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	return ctx, cancel, deadline
}

// itemError classifies one failed upstream into the typed per-item
// error the degraded envelopes carry.
func (rt *Router) itemError(u upstream, shard int) *ms.ItemError {
	code := ms.CodeShardUnavailable
	msg := fmt.Sprintf("shard %d unavailable", shard)
	switch {
	case errors.Is(u.err, errBudgetExhausted):
		code = ms.CodeDeadlineExceeded
		msg = fmt.Sprintf("deadline budget exhausted before shard %d answered", shard)
	case errors.Is(u.err, errCircuitOpen):
		msg = fmt.Sprintf("shard %d circuit open", shard)
	case u.err != nil:
		msg = fmt.Sprintf("shard %d: %v", shard, u.err)
	case u.status >= 500:
		msg = fmt.Sprintf("shard %d answered %d", shard, u.status)
	}
	return &ms.ItemError{Code: code, Shard: shard, Message: msg}
}

// writeFailure writes the typed error for a wholly-failed call:
// 504 deadline_exceeded when the caller's budget ran out, 503
// shard_unavailable otherwise.
func (rt *Router) writeFailure(w http.ResponseWriter, u upstream, shard int) {
	ie := rt.itemError(u, shard)
	status := http.StatusServiceUnavailable
	if ie.Code == ms.CodeDeadlineExceeded {
		status = http.StatusGatewayTimeout
	}
	writeError(w, status, ie.Code, ie.Message)
}

// relay writes one upstream response through unchanged (a transport
// failure maps to 502 shard_unreachable). A Retry-After already set on
// w (the cross-shard max) is not overwritten.
func (rt *Router) relay(w http.ResponseWriter, u upstream) {
	if u.err != nil {
		rt.errors.Add(1)
		writeError(w, http.StatusBadGateway, "shard_unreachable", u.err.Error())
		return
	}
	if u.status >= 400 {
		rt.errors.Add(1)
	}
	if ct := u.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := u.header.Get("Retry-After"); ra != "" && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(u.status)
	_, _ = w.Write(u.body)
}

// maxRetryAfter returns the largest Retry-After advertised by any
// upstream: a caller backing off a sharded fleet must wait for the
// slowest shard, not whichever happened to answer last.
func maxRetryAfter(ups []upstream) string {
	best, bestN := "", -1.0
	for _, u := range ups {
		if u.header == nil {
			continue
		}
		ra := u.header.Get("Retry-After")
		if ra == "" {
			continue
		}
		if n, err := strconv.ParseFloat(ra, 64); err == nil {
			if n > bestN {
				bestN, best = n, ra
			}
		} else if best == "" {
			best = ra
		}
	}
	return best
}

// txnPeek reads just the routing key and id out of a transaction body.
type txnPeek struct {
	ID   int64 `json:"id"`
	From int32 `json:"from"`
}

// single forwards a one-transaction request (score/decide/ingest) whole
// to the sender's owner shard. Score and decide are idempotent reads:
// they retry, and hedge when enabled. Ingest is at-most-once — one
// attempt, no retry — unless the caller opts in with X-Idempotency-Key.
// A decide that cannot be served still answers 200, carrying the
// fail-closed fallback action and a degraded marker.
func (rt *Router) single(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSingleBytes))
	if err != nil {
		rt.readError(w, err)
		return
	}
	var peek txnPeek
	if err := json.Unmarshal(body, &peek); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	rt.singles.Add(1)
	start := rt.now()
	var spans telemetry.Spans
	defer func() { rt.observe(r, endpointName(r.URL.Path), rt.now().Sub(start), &spans) }()
	ctx, cancel, deadline := rt.requestBudget(r)
	defer cancel()
	spec := callSpec{method: http.MethodPost, path: r.URL.Path, body: body, shard: rt.ownerShard(txn.UserID(peek.From)), spans: &spans}
	switch r.URL.Path {
	case "/v1/ingest":
		spec.retryable = r.Header.Get(HeaderIdempotencyKey) != ""
	default: // score, decide
		spec.retryable, spec.hedged = true, true
	}
	rstart := rt.now()
	u := rt.hedgedCall(ctx, r, deadline, spec)
	spans[telemetry.StageRoute] = rt.now().Sub(rstart)
	if !u.failed() {
		rt.relay(w, u)
		return
	}
	rt.errors.Add(1)
	if r.URL.Path == "/v1/decide" {
		rt.degraded.Add(1)
		writeJSON(w, http.StatusOK, ms.DegradedDecision{
			DegradedVerdict: ms.DegradedVerdict{
				TxnID:    txn.TxnID(peek.ID),
				Degraded: true,
				Error:    rt.itemError(u, spec.shard),
				TraceID:  w.Header().Get(telemetry.TraceHeader),
			},
			Action: rt.fallback,
			Reason: "fallback: owner shard unavailable",
		})
		return
	}
	rt.writeFailure(w, u, spec.shard)
}

// endpointName maps a /v1 data-plane path to its span-tracker endpoint
// ("/v1/score/batch" → "score_batch").
func endpointName(path string) string {
	return strings.ReplaceAll(strings.TrimPrefix(path, "/v1/"), "/", "_")
}

// observe folds one request's spans into the router's tracker under the
// request's trace ID.
func (rt *Router) observe(r *http.Request, endpoint string, total time.Duration, spans *telemetry.Spans) {
	et := rt.tel.Endpoint(endpoint)
	if et == nil {
		return
	}
	id, _ := telemetry.TraceFrom(r.Context())
	et.Observe(id, total, spans)
}

func (rt *Router) readError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, "bad_request", err.Error())
}

// batchBody is a batch request with each transaction kept raw, so the
// router routes on the "from" field alone and never re-encodes fields it
// does not understand (labels, scenarios, future additions all survive).
type batchBody struct {
	Transactions []json.RawMessage `json:"transactions"`
}

// batch scatters a batch route across owner shards and gathers the
// responses in input order. itemsKey names the response array to merge
// ("verdicts", "decisions"); "" merges ingest {"ingested": n} counts.
//
// Gather degrades instead of failing: a shard that cannot answer
// (circuit open, retries exhausted, 5xx) turns only its own items into
// typed degraded envelopes — score items report shard_unavailable,
// decide items additionally carry the fallback action — while the rest
// of the batch returns real verdicts. A shard answering 4xx still fails
// the whole batch (lowest shard index wins, the in-process engine's
// deterministic error order) with Retry-After maxed across shards.
func (rt *Router) batch(w http.ResponseWriter, r *http.Request, itemsKey string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err != nil {
		rt.readError(w, err)
		return
	}
	var req batchBody
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	rt.batches.Add(1)
	start := rt.now()
	var spans telemetry.Spans
	defer func() { rt.observe(r, endpointName(r.URL.Path), rt.now().Sub(start), &spans) }()
	n := len(rt.shards)
	groups := make([][]int, n)
	ids := make([]int64, len(req.Transactions))
	for i, tx := range req.Transactions {
		var peek txnPeek
		if err := json.Unmarshal(tx, &peek); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("transaction %d: malformed JSON: %v", i, err))
			return
		}
		ids[i] = peek.ID
		si := ms.ShardOf(txn.UserID(peek.From), n)
		groups[si] = append(groups[si], i)
	}

	ctx, cancel, deadline := rt.requestBudget(r)
	defer cancel()
	retryable := itemsKey != "" || r.Header.Get(HeaderIdempotencyKey) != ""
	ups := make([]upstream, n)
	callSpans := make([]telemetry.Spans, n) // one buffer per scatter goroutine
	var wg sync.WaitGroup
	scatterStart := rt.now()
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		rt.fanouts.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			sub := batchBody{Transactions: make([]json.RawMessage, len(idxs))}
			for k, i := range idxs {
				sub.Transactions[k] = req.Transactions[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				ups[si] = upstream{err: err}
				return
			}
			ups[si] = rt.resilientCall(ctx, r, deadline, callSpec{
				method: http.MethodPost, path: r.URL.Path, body: body,
				shard: si, retryable: retryable, spans: &callSpans[si],
			})
		}(si, idxs)
	}
	wg.Wait()
	spans[telemetry.StageRoute] = rt.now().Sub(scatterStart)
	for i := range callSpans {
		spans[telemetry.StageRetry] += callSpans[i][telemetry.StageRetry]
	}

	// A 4xx is the shard refusing a request the router faithfully
	// forwarded (malformed row, over quota): relay it whole, lowest
	// failing shard index first, with the cross-shard max Retry-After.
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		if u := ups[si]; u.err == nil && u.status >= 400 && u.status < 500 {
			if ra := maxRetryAfter(ups); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			rt.relay(w, u)
			return
		}
	}

	gstart := rt.now()
	if itemsKey == "" {
		rt.gatherIngest(w, groups, ups)
	} else {
		rt.gatherItems(w, itemsKey, req, groups, ids, ups)
	}
	spans[telemetry.StageGather] = rt.now().Sub(gstart)
}

// gatherIngest merges per-shard ingest counts. Failed shards surface as
// a "failed" count plus typed per-shard errors; ingest has no per-item
// bodies to degrade.
func (rt *Router) gatherIngest(w http.ResponseWriter, groups [][]int, ups []upstream) {
	total, failedCount := 0, 0
	var failedShards []map[string]interface{}
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		u := ups[si]
		if u.failed() {
			rt.errors.Add(1)
			failedCount += len(idxs)
			failedShards = append(failedShards, map[string]interface{}{
				"shard": si, "count": len(idxs), "error": rt.itemError(u, si),
			})
			continue
		}
		var ir struct {
			Ingested int `json:"ingested"`
		}
		if err := json.Unmarshal(u.body, &ir); err != nil {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response", err.Error())
			return
		}
		total += ir.Ingested
	}
	out := map[string]interface{}{"ingested": total}
	if failedCount > 0 {
		out["failed"] = failedCount
		out["failed_shards"] = failedShards
	}
	writeJSON(w, http.StatusOK, out)
}

// gatherItems merges per-shard score/decide sub-arrays back into caller
// order, substituting typed degraded envelopes for items owned by
// failed shards.
func (rt *Router) gatherItems(w http.ResponseWriter, itemsKey string, req batchBody, groups [][]int, ids []int64, ups []upstream) {
	merged := make([]json.RawMessage, len(req.Transactions))
	degradedCount := 0
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		u := ups[si]
		if u.failed() {
			rt.errors.Add(1)
			ie := rt.itemError(u, si)
			traceID := w.Header().Get(telemetry.TraceHeader)
			for _, i := range idxs {
				degradedCount++
				rt.degraded.Add(1)
				dv := ms.DegradedVerdict{TxnID: txn.TxnID(ids[i]), Degraded: true, Error: ie, TraceID: traceID}
				var item interface{} = dv
				if itemsKey == "decisions" {
					item = ms.DegradedDecision{
						DegradedVerdict: dv,
						Action:          rt.fallback,
						Reason:          "fallback: owner shard unavailable",
					}
				}
				enc, _ := json.Marshal(item)
				merged[i] = enc
			}
			continue
		}
		var resp map[string]json.RawMessage
		if err := json.Unmarshal(u.body, &resp); err != nil {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response", err.Error())
			return
		}
		var items []json.RawMessage
		if err := json.Unmarshal(resp[itemsKey], &items); err != nil || len(items) != len(idxs) {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response",
				fmt.Sprintf("shard %d returned %d %s for %d transactions", si, len(items), itemsKey, len(idxs)))
			return
		}
		for k, i := range idxs {
			merged[i] = items[k]
		}
	}
	for i := range merged {
		if merged[i] == nil {
			merged[i] = json.RawMessage("null")
		}
	}
	out := map[string]interface{}{itemsKey: merged}
	if degradedCount > 0 {
		out["degraded"] = degradedCount
	}
	writeJSON(w, http.StatusOK, out)
}

// control handles /v1/models and /v1/policy. GET reads shard 0 (the
// fleet is swapped in lockstep, so any shard answers) and fails over in
// ring order when it cannot answer. POST replicates the swap to every
// shard in ring order with NO automatic retry — replication is
// at-most-once per shard, and a mid-ring failure leaves a mixed fleet
// with a response naming the failed shard and how far the swap got; the
// operator retries the idempotent swap until it lands everywhere, and
// /v1/stats surfaces the mix via "version_mixed".
func (rt *Router) control(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		ctx, cancel, deadline := rt.requestBudget(r)
		defer cancel()
		var last upstream
		for si := range rt.shards {
			u := rt.resilientCall(ctx, r, deadline, callSpec{
				method: http.MethodGet, path: r.URL.Path, shard: si,
			})
			if !u.failed() {
				rt.relay(w, u)
				return
			}
			last = u
		}
		rt.errors.Add(1)
		rt.writeFailure(w, last, len(rt.shards)-1)
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxControlBytes))
		if err != nil {
			rt.readError(w, err)
			return
		}
		rt.controls.Add(1)
		ctx, cancel, deadline := rt.requestBudget(r)
		defer cancel()
		var last upstream
		for si := range rt.shards {
			u := rt.resilientCall(ctx, r, deadline, callSpec{
				method: http.MethodPost, path: r.URL.Path, body: body, shard: si,
			})
			if u.err != nil || u.status != http.StatusOK {
				rt.errors.Add(1)
				if u.err != nil {
					writeError(w, http.StatusBadGateway, "shard_unreachable",
						fmt.Sprintf("shard %d: %v (swap applied to %d of %d shards)", si, u.err, si, len(rt.shards)))
					return
				}
				rt.relay(w, u)
				return
			}
			last = u
		}
		rt.relay(w, last)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET or POST only")
	}
}

// routerStats builds the /v1/stats "router" section.
func (rt *Router) routerStats() map[string]interface{} {
	breakers := make([]map[string]interface{}, len(rt.brk))
	for si, b := range rt.brk {
		breakers[si] = b.snapshot(si, rt.lat[si].Quantile(0.99))
	}
	return map[string]interface{}{
		"shards":             rt.shards,
		"singles":            rt.singles.Load(),
		"batches":            rt.batches.Load(),
		"fanouts":            rt.fanouts.Load(),
		"controls":           rt.controls.Load(),
		"errors":             rt.errors.Load(),
		"retries":            rt.retried.Load(),
		"hedges":             rt.hedges.Load(),
		"hedge_wins":         rt.hedgeWins.Load(),
		"degraded_items":     rt.degraded.Load(),
		"deadline_exhausted": rt.deadlines.Load(),
		"fallback_action":    rt.fallback,
		"breakers":           breakers,
	}
}

// stats fans GET /v1/stats to every shard and deep-merges the reachable
// bodies (see MergeStats), adding a "router" section with the ring, the
// router's own counters and per-shard breaker state. Unreachable shards
// are listed, not fatal — stats is how operators see a degraded fleet,
// so it must answer while the fleet is degraded. Only a fully
// unreachable fleet is a 502.
func (rt *Router) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	ups := rt.fanGet(r, "/v1/stats", callSpec{retryable: true})
	var bodies []map[string]interface{}
	var unreachable []int
	for si, u := range ups {
		if u.failed() {
			rt.errors.Add(1)
			unreachable = append(unreachable, si)
			continue
		}
		var body map[string]interface{}
		if err := json.Unmarshal(u.body, &body); err != nil {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response", err.Error())
			return
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		writeError(w, http.StatusBadGateway, "shard_unreachable", "no shard answered /v1/stats")
		return
	}
	merged := MergeStats(bodies)
	rs := rt.routerStats()
	if len(unreachable) > 0 {
		rs["unreachable"] = unreachable
	}
	merged["router"] = rs
	writeJSON(w, http.StatusOK, merged)
}

// fanGet issues one GET per shard concurrently through the resilience
// plane.
func (rt *Router) fanGet(r *http.Request, path string, spec callSpec) []upstream {
	ctx, cancel, deadline := rt.requestBudget(r)
	defer cancel()
	ups := make([]upstream, len(rt.shards))
	var wg sync.WaitGroup
	for si := range rt.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s := spec
			s.method, s.path, s.shard = http.MethodGet, path, si
			ups[si] = rt.resilientCall(ctx, r, deadline, s)
		}(si)
	}
	wg.Wait()
	return ups
}

// healthz folds the fleet's readiness with quorum semantics: 200 "ok"
// when every shard answers ok, 200 "degraded" (with per-shard detail)
// while at least quorum shards are healthy — a load balancer must keep
// sending traffic to a fleet that can still serve most users — and 503
// "unavailable" only below quorum. Probes bypass the circuit breakers:
// health must report what the shard says now, not what the breaker
// remembers.
func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	ups := rt.fanGet(r, "/healthz", callSpec{retryable: true, noBreaker: true})
	type shardHealth struct {
		Shard   int    `json:"shard"`
		Status  string `json:"status"`
		Breaker string `json:"breaker"`
		Error   string `json:"error,omitempty"`
	}
	out := map[string]interface{}{"shards": len(rt.shards), "quorum": rt.quorum}
	statuses := make([]shardHealth, len(ups))
	healthy := 0
	for si, u := range ups {
		sh := shardHealth{Shard: si, Status: "ok", Breaker: breakerStateName(rt.brk[si].currentState())}
		switch {
		case u.err != nil:
			sh.Status, sh.Error = "unreachable", u.err.Error()
		case u.status != http.StatusOK:
			sh.Status = fmt.Sprintf("http_%d", u.status)
		default:
			var body map[string]interface{}
			if err := json.Unmarshal(u.body, &body); err != nil || body["status"] != "ok" {
				sh.Status = "degraded"
			} else {
				healthy++
				if _, ok := out["bundle_version"]; !ok {
					out["bundle_version"] = body["bundle_version"]
					if pv, ok := body["policy_version"]; ok {
						out["policy_version"] = pv
					}
				}
			}
		}
		statuses[si] = sh
	}
	out["shard_status"] = statuses
	out["healthy"] = healthy
	status := http.StatusOK
	switch {
	case healthy == len(rt.shards):
		out["status"] = "ok"
	case healthy >= rt.quorum:
		rt.errors.Add(1)
		out["status"] = "degraded"
	default:
		rt.errors.Add(1)
		out["status"] = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}
