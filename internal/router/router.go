// Package router is the scatter/gather tier that lifts the in-process
// shard split over the wire: a stateless daemon owning no model, no
// table and no window, only the hash ring. It fans the v1 batch routes
// out to shard servers with ms.ShardOf — the same jump hash the
// in-process engine partitions by — merges the responses in input order,
// replicates control-plane swaps (models, policy) to every shard, and
// folds the fleet's stats and health into single bodies.
//
// Shard servers are plain `titant serve` processes: each carries the
// full read-only feature table (replicated T+1 artifacts are cheap to
// copy) while the hot user-keyed state — user cache, stream window,
// event log — partitions naturally because each server only ever sees
// its owners' traffic. Delivery semantics on the data plane are
// at-most-once per shard: if one shard fails mid-batch the router
// relays that shard's error and does not retry siblings, exactly the
// all-or-nothing surface the in-process engine presents (minus the
// rollback the wire cannot give).
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"titant/internal/ms"
	"titant/internal/txn"
)

// Request-body ceilings, mirroring the shard servers' own limits: the
// router never buffers more than a shard would accept.
const (
	maxSingleBytes  = 1 << 20
	maxBatchBytes   = 64 << 20
	maxControlBytes = 64 << 20
)

// Option configures a Router.
type Option func(*Router)

// WithTimeout bounds each proxied shard call (default 10s).
func WithTimeout(d time.Duration) Option {
	return func(rt *Router) { rt.client.Timeout = d }
}

// Router fans v1 traffic across a fixed shard ring.
type Router struct {
	shards []string // base URLs, index = shard number
	client *http.Client

	// Observability counters for the /v1/stats "router" section.
	singles  atomic.Int64 // single-row requests forwarded to one owner
	batches  atomic.Int64 // batch requests scattered
	fanouts  atomic.Int64 // sub-batches dispatched by scatters
	controls atomic.Int64 // model/policy swaps replicated
	errors   atomic.Int64 // upstream failures relayed or detected
}

// New builds a router over the given shard base URLs (e.g.
// "http://10.0.0.1:8080"). Order is identity: index i is shard i of
// len(shards), and must stay stable across router restarts or users
// would re-partition silently.
func New(shards []string, opts ...Option) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("router: no shards")
	}
	cleaned := make([]string, len(shards))
	for i, s := range shards {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" {
			return nil, fmt.Errorf("router: empty shard URL at index %d", i)
		}
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		cleaned[i] = s
	}
	rt := &Router{shards: cleaned, client: &http.Client{Timeout: 10 * time.Second}}
	for _, o := range opts {
		o(rt)
	}
	return rt, nil
}

// Shards returns the ring width.
func (rt *Router) Shards() int { return len(rt.shards) }

// ownerURL returns the base URL of the shard owning user u.
func (rt *Router) ownerURL(u txn.UserID) string {
	return rt.shards[ms.ShardOf(u, len(rt.shards))]
}

// Handler returns the router's mux: the shard servers' v1 surface, one
// hop up.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", rt.single)
	mux.HandleFunc("/v1/decide", rt.single)
	mux.HandleFunc("/v1/ingest", rt.single)
	mux.HandleFunc("/v1/score/batch", func(w http.ResponseWriter, r *http.Request) {
		rt.batch(w, r, "verdicts")
	})
	mux.HandleFunc("/v1/decide/batch", func(w http.ResponseWriter, r *http.Request) {
		rt.batch(w, r, "decisions")
	})
	mux.HandleFunc("/v1/ingest/batch", func(w http.ResponseWriter, r *http.Request) {
		rt.batch(w, r, "")
	})
	mux.HandleFunc("/v1/models", rt.control)
	mux.HandleFunc("/v1/policy", rt.control)
	mux.HandleFunc("/v1/stats", rt.stats)
	mux.HandleFunc("/healthz", rt.healthz)
	return mux
}

// ListenAndServe serves the router on addr with the shard servers'
// graceful-shutdown contract.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	return ms.ListenAndServe(ctx, addr, rt.Handler())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// forwardHeaders copies the request headers shard servers act on.
func forwardHeaders(dst *http.Request, src *http.Request) {
	for _, k := range []string{"Content-Type", "Authorization", "X-Caller"} {
		if v := src.Header.Get(k); v != "" {
			dst.Header.Set(k, v)
		}
	}
}

// upstream is one proxied shard response, fully buffered.
type upstream struct {
	status int
	header http.Header
	body   []byte
	err    error // transport failure (no response)
}

// call POSTs (or GETs) body to shard base+path, relaying headers from r.
func (rt *Router) call(r *http.Request, method, base, path string, body []byte) upstream {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, base+path, rd)
	if err != nil {
		return upstream{err: err}
	}
	forwardHeaders(req, r)
	resp, err := rt.client.Do(req)
	if err != nil {
		return upstream{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxControlBytes))
	if err != nil {
		return upstream{err: err}
	}
	return upstream{status: resp.StatusCode, header: resp.Header, body: data}
}

// relay writes one upstream response through unchanged (a transport
// failure maps to 502 shard_unreachable).
func (rt *Router) relay(w http.ResponseWriter, u upstream) {
	if u.err != nil {
		rt.errors.Add(1)
		writeError(w, http.StatusBadGateway, "shard_unreachable", u.err.Error())
		return
	}
	if u.status >= 400 {
		rt.errors.Add(1)
	}
	if ct := u.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := u.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(u.status)
	_, _ = w.Write(u.body)
}

// fromPeek reads just the routing key out of a transaction body.
type fromPeek struct {
	From int32 `json:"from"`
}

// single forwards a one-transaction request (score/decide/ingest) whole
// to the sender's owner shard.
func (rt *Router) single(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSingleBytes))
	if err != nil {
		rt.readError(w, err)
		return
	}
	var peek fromPeek
	if err := json.Unmarshal(body, &peek); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	rt.singles.Add(1)
	rt.relay(w, rt.call(r, http.MethodPost, rt.ownerURL(txn.UserID(peek.From)), r.URL.Path, body))
}

func (rt *Router) readError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, "bad_request", err.Error())
}

// batchBody is a batch request with each transaction kept raw, so the
// router routes on the "from" field alone and never re-encodes fields it
// does not understand (labels, scenarios, future additions all survive).
type batchBody struct {
	Transactions []json.RawMessage `json:"transactions"`
}

// batch scatters a batch route across owner shards and gathers the
// responses in input order. itemsKey names the response array to merge
// ("verdicts", "decisions"); "" merges ingest {"ingested": n} counts.
func (rt *Router) batch(w http.ResponseWriter, r *http.Request, itemsKey string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err != nil {
		rt.readError(w, err)
		return
	}
	var req batchBody
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	rt.batches.Add(1)
	n := len(rt.shards)
	groups := make([][]int, n)
	for i, tx := range req.Transactions {
		var peek fromPeek
		if err := json.Unmarshal(tx, &peek); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("transaction %d: malformed JSON: %v", i, err))
			return
		}
		si := ms.ShardOf(txn.UserID(peek.From), n)
		groups[si] = append(groups[si], i)
	}

	ups := make([]upstream, n)
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		rt.fanouts.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			sub := batchBody{Transactions: make([]json.RawMessage, len(idxs))}
			for k, i := range idxs {
				sub.Transactions[k] = req.Transactions[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				ups[si] = upstream{err: err}
				return
			}
			ups[si] = rt.call(r, http.MethodPost, rt.shards[si], r.URL.Path, body)
		}(si, idxs)
	}
	wg.Wait()

	// Lowest failing shard index wins, the in-process engine's
	// deterministic error order.
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		if u := ups[si]; u.err != nil || u.status != http.StatusOK {
			rt.relay(w, u)
			return
		}
	}

	if itemsKey == "" {
		// Ingest: the per-shard counts sum.
		total := 0
		for si, idxs := range groups {
			if len(idxs) == 0 {
				continue
			}
			var ir struct {
				Ingested int `json:"ingested"`
			}
			if err := json.Unmarshal(ups[si].body, &ir); err != nil {
				rt.errors.Add(1)
				writeError(w, http.StatusBadGateway, "shard_bad_response", err.Error())
				return
			}
			total += ir.Ingested
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{"ingested": total})
		return
	}

	// Score/decide: scatter each shard's ordered sub-array back into the
	// callers' positions.
	merged := make([]json.RawMessage, len(req.Transactions))
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		var resp map[string]json.RawMessage
		if err := json.Unmarshal(ups[si].body, &resp); err != nil {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response", err.Error())
			return
		}
		var items []json.RawMessage
		if err := json.Unmarshal(resp[itemsKey], &items); err != nil || len(items) != len(idxs) {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response",
				fmt.Sprintf("shard %d returned %d %s for %d transactions", si, len(items), itemsKey, len(idxs)))
			return
		}
		for k, i := range idxs {
			merged[i] = items[k]
		}
	}
	for i := range merged {
		if merged[i] == nil {
			merged[i] = json.RawMessage("null")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]interface{}{itemsKey: merged})
}

// control handles /v1/models and /v1/policy: GET reads shard 0 (the
// fleet is swapped in lockstep, so any shard answers); POST replicates
// the swap to every shard in ring order and relays the first failure.
// A mid-ring failure leaves a mixed fleet — the operator retries the
// idempotent swap until it lands everywhere; /v1/stats surfaces the
// mix via "version_mixed".
func (rt *Router) control(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rt.relay(w, rt.call(r, http.MethodGet, rt.shards[0], r.URL.Path, nil))
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxControlBytes))
		if err != nil {
			rt.readError(w, err)
			return
		}
		rt.controls.Add(1)
		var last upstream
		for si, base := range rt.shards {
			u := rt.call(r, http.MethodPost, base, r.URL.Path, body)
			if u.err != nil || u.status != http.StatusOK {
				rt.errors.Add(1)
				if u.err != nil {
					writeError(w, http.StatusBadGateway, "shard_unreachable",
						fmt.Sprintf("shard %d: %v (swap applied to %d of %d shards)", si, u.err, si, len(rt.shards)))
					return
				}
				rt.relay(w, u)
				return
			}
			last = u
		}
		rt.relay(w, last)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET or POST only")
	}
}

// stats fans GET /v1/stats to every shard and deep-merges the bodies
// (see MergeStats), adding a "router" section with the ring and the
// router's own counters.
func (rt *Router) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	bodies := make([]map[string]interface{}, len(rt.shards))
	ups := rt.fanGet(r, "/v1/stats")
	for si, u := range ups {
		if u.err != nil || u.status != http.StatusOK {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_unreachable",
				fmt.Sprintf("shard %d stats unavailable", si))
			return
		}
		if err := json.Unmarshal(u.body, &bodies[si]); err != nil {
			rt.errors.Add(1)
			writeError(w, http.StatusBadGateway, "shard_bad_response", err.Error())
			return
		}
	}
	merged := MergeStats(bodies)
	merged["router"] = map[string]interface{}{
		"shards":   rt.shards,
		"singles":  rt.singles.Load(),
		"batches":  rt.batches.Load(),
		"fanouts":  rt.fanouts.Load(),
		"controls": rt.controls.Load(),
		"errors":   rt.errors.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(merged)
}

// fanGet issues one GET per shard concurrently.
func (rt *Router) fanGet(r *http.Request, path string) []upstream {
	ups := make([]upstream, len(rt.shards))
	var wg sync.WaitGroup
	for si, base := range rt.shards {
		wg.Add(1)
		go func(si int, base string) {
			defer wg.Done()
			ups[si] = rt.call(r, http.MethodGet, base, path, nil)
		}(si, base)
	}
	wg.Wait()
	return ups
}

// healthz folds the fleet's readiness: 200 "ok" only when every shard
// answers "ok"; any unreachable or degraded shard turns the fleet body
// into a 503 naming the sick shards, which is what a load balancer in
// front of the router needs to stop sending traffic.
func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	ups := rt.fanGet(r, "/healthz")
	type shardHealth struct {
		Shard  int    `json:"shard"`
		Status string `json:"status"`
		Error  string `json:"error,omitempty"`
	}
	out := map[string]interface{}{"shards": len(rt.shards)}
	statuses := make([]shardHealth, len(ups))
	healthy := true
	for si, u := range ups {
		sh := shardHealth{Shard: si, Status: "ok"}
		switch {
		case u.err != nil:
			sh.Status, sh.Error = "unreachable", u.err.Error()
			healthy = false
		case u.status != http.StatusOK:
			sh.Status = fmt.Sprintf("http_%d", u.status)
			healthy = false
		default:
			var body map[string]interface{}
			if err := json.Unmarshal(u.body, &body); err != nil || body["status"] != "ok" {
				sh.Status = "degraded"
				healthy = false
			} else if si == 0 {
				out["bundle_version"] = body["bundle_version"]
				if pv, ok := body["policy_version"]; ok {
					out["policy_version"] = pv
				}
			}
		}
		statuses[si] = sh
	}
	out["shard_status"] = statuses
	status := http.StatusOK
	if healthy {
		out["status"] = "ok"
	} else {
		rt.errors.Add(1)
		out["status"] = "degraded"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(out)
}
