package router

import (
	"encoding/json"
	"testing"
)

// body decodes a JSON literal into the map shape MergeStats consumes,
// so the fixtures exercise the same float64-typed values real shard
// responses produce.
func body(t *testing.T, raw string) map[string]interface{} {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(raw), &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMergeStatsCountersAndHistogram(t *testing.T) {
	a := body(t, `{
	  "scored": 10, "alerted": 1, "version": "v1", "shards": 1,
	  "p50_us": 1, "p99_us": 2, "max_us": 3,
	  "latency_hist": {"bounds_ns": [1000, 2000], "counts": [10, 0, 0], "max_ns": 900},
	  "user_cache": {"hits": 5, "misses": 5, "size": 4, "capacity": 64},
	  "admission": {"admitted": 10, "shed_quota": 1, "rate": 100, "burst": 50, "max_inflight": 8, "callers": 2, "inflight": 0, "shed_inflight": 0}
	}`)
	b := body(t, `{
	  "scored": 30, "alerted": 2, "version": "v1", "shards": 1,
	  "p50_us": 2, "p99_us": 2, "max_us": 2,
	  "latency_hist": {"bounds_ns": [1000, 2000], "counts": [0, 0, 30], "max_ns": 5000},
	  "user_cache": {"hits": 20, "misses": 10, "size": 9, "capacity": 64},
	  "admission": {"admitted": 30, "shed_quota": 0, "rate": 100, "burst": 50, "max_inflight": 8, "callers": 3, "inflight": 1, "shed_inflight": 2}
	}`)
	m := MergeStats([]map[string]interface{}{a, b})

	if m["scored"].(float64) != 40 || m["alerted"].(float64) != 3 {
		t.Fatalf("counters: scored=%v alerted=%v", m["scored"], m["alerted"])
	}
	if m["version"] != "v1" {
		t.Fatalf("version = %v", m["version"])
	}
	if _, mixed := m["version_mixed"]; mixed {
		t.Fatal("uniform fleet flagged as mixed")
	}
	if m["shards"].(float64) != 2 {
		t.Fatalf("shards = %v", m["shards"])
	}

	// Histogram counts summed: 10 samples <=1µs, 30 above 2µs. The p50
	// rank (20) falls in the overflow bucket, clamped to the observed
	// max — NOT any average of the per-shard p50s (1µs, 2µs).
	hist := m["latency_hist"].(map[string]interface{})
	counts, _ := floatSlice(hist["counts"])
	if counts[0] != 10 || counts[2] != 30 {
		t.Fatalf("merged counts = %v", counts)
	}
	if hist["max_ns"].(float64) != 5000 {
		t.Fatalf("merged max_ns = %v", hist["max_ns"])
	}
	if m["p50_us"].(float64) != 5 || m["max_us"].(float64) != 5 {
		t.Fatalf("recomputed p50_us=%v max_us=%v, want 5 and 5", m["p50_us"], m["max_us"])
	}

	cache := m["user_cache"].(map[string]interface{})
	if cache["hits"].(float64) != 25 || cache["capacity"].(float64) != 128 {
		t.Fatalf("cache merge = %v", cache)
	}
	adm := m["admission"].(map[string]interface{})
	if adm["admitted"].(float64) != 40 || adm["shed_quota"].(float64) != 1 {
		t.Fatalf("admission counters = %v", adm)
	}
	if adm["max_inflight"].(float64) != 16 || adm["callers"].(float64) != 3 {
		t.Fatalf("admission capacity: max_inflight=%v callers=%v", adm["max_inflight"], adm["callers"])
	}
}

func TestMergeStatsVersionMixed(t *testing.T) {
	m := MergeStats([]map[string]interface{}{
		body(t, `{"version": "v1", "scored": 1}`),
		body(t, `{"version": "v2", "scored": 1}`),
	})
	if m["version"] != "v1" || m["version_mixed"] != true {
		t.Fatalf("mixed fleet: version=%v mixed=%v", m["version"], m["version_mixed"])
	}
}

func TestMergeStatsShadowAndDrift(t *testing.T) {
	a := body(t, `{
	  "scored": 1,
	  "shadow": {"challenger_version": "c1", "scored": 10, "agreed": 10, "flipped": 0,
	             "dropped": 0, "errors": 0, "agreement": 1.0, "mean_divergence": 0.1, "queue_depth": 1},
	  "drift": {"alert": false, "series": [
	    {"name": "score", "baseline": 100, "live": 10, "psi": 0.01, "ks": 0.02, "alert": false}
	  ]}
	}`)
	b := body(t, `{
	  "scored": 1,
	  "shadow": {"challenger_version": "c1", "scored": 30, "agreed": 15, "flipped": 15,
	             "dropped": 1, "errors": 0, "agreement": 0.5, "mean_divergence": 0.3, "queue_depth": 2},
	  "drift": {"alert": true, "series": [
	    {"name": "score", "baseline": 100, "live": 30, "psi": 0.4, "ks": 0.1, "alert": true}
	  ]}
	}`)
	m := MergeStats([]map[string]interface{}{a, b})

	sh := m["shadow"].(map[string]interface{})
	if sh["scored"].(float64) != 40 || sh["agreed"].(float64) != 25 {
		t.Fatalf("shadow counters = %v", sh)
	}
	if got := sh["agreement"].(float64); got != 25.0/40.0 {
		t.Fatalf("agreement = %v, want %v (recomputed, not averaged)", got, 25.0/40.0)
	}
	// Weighted by scored: (0.1*10 + 0.3*30) / 40 = 0.25.
	if got := sh["mean_divergence"].(float64); got != 0.25 {
		t.Fatalf("mean_divergence = %v, want 0.25", got)
	}

	dr := m["drift"].(map[string]interface{})
	if dr["alert"] != true {
		t.Fatal("drift alert not OR-ed")
	}
	series := dr["series"].([]interface{})
	s0 := series[0].(map[string]interface{})
	if s0["live"].(float64) != 40 || s0["psi"].(float64) != 0.4 || s0["alert"] != true {
		t.Fatalf("drift series merge = %v", s0)
	}
}

func TestMergeStatsEndpointsAndEventlog(t *testing.T) {
	a := body(t, `{
	  "scored": 1,
	  "endpoints": {"ingest": {"count": 5, "p50_us": 10, "p99_us": 20, "max_us": 30,
	    "hist": {"bounds_ns": [1000], "counts": [5, 0], "max_ns": 800}}},
	  "eventlog": {"appended": 100, "fsyncs": 10, "bytes": 4096, "segments": 1,
	    "max_consumer_lag": 5, "last_fsync_age_seconds": 0.5, "replayed": 0, "append_errors": 0,
	    "first_offset": 0, "next_offset": 100, "unsynced_bytes": 10, "snapshot_end": 0}
	}`)
	b := body(t, `{
	  "scored": 1,
	  "endpoints": {"ingest": {"count": 15, "p50_us": 40, "p99_us": 50, "max_us": 60,
	    "hist": {"bounds_ns": [1000], "counts": [0, 15], "max_ns": 9000}}},
	  "eventlog": {"appended": 300, "fsyncs": 30, "bytes": 8192, "segments": 2,
	    "max_consumer_lag": 50, "last_fsync_age_seconds": 0.1, "replayed": 7, "append_errors": 1,
	    "first_offset": 40, "next_offset": 340, "unsynced_bytes": 0, "snapshot_end": 40}
	}`)
	m := MergeStats([]map[string]interface{}{a, b})

	ing := m["endpoints"].(map[string]interface{})["ingest"].(map[string]interface{})
	if ing["count"].(float64) != 20 {
		t.Fatalf("endpoint count = %v", ing["count"])
	}
	// 5 samples <=1µs + 15 in overflow: p50 rank 10 → overflow → max 9µs.
	if ing["p50_us"].(float64) != 9 {
		t.Fatalf("endpoint p50_us = %v, want 9", ing["p50_us"])
	}

	el := m["eventlog"].(map[string]interface{})
	if el["appended"].(float64) != 400 || el["replayed"].(float64) != 7 || el["append_errors"].(float64) != 1 {
		t.Fatalf("eventlog sums = %v", el)
	}
	if el["max_consumer_lag"].(float64) != 50 || el["last_fsync_age_seconds"].(float64) != 0.5 {
		t.Fatalf("eventlog maxima = %v", el)
	}
	if _, ok := el["next_offset"]; ok {
		t.Fatal("per-log offsets leaked into the merged view")
	}
}

func TestMergeStatsIncompatibleHistogramsFallBack(t *testing.T) {
	m := MergeStats([]map[string]interface{}{
		body(t, `{"scored": 1, "p50_us": 3, "p99_us": 7, "max_us": 9,
		          "latency_hist": {"bounds_ns": [1000], "counts": [1, 0], "max_ns": 100}}`),
		body(t, `{"scored": 1, "p50_us": 5, "p99_us": 6, "max_us": 8,
		          "latency_hist": {"bounds_ns": [2000], "counts": [1, 0], "max_ns": 100}}`),
	})
	if _, ok := m["latency_hist"]; ok {
		t.Fatal("incompatible histograms merged anyway")
	}
	// Worst-shard fallback.
	if m["p50_us"].(float64) != 5 || m["p99_us"].(float64) != 7 || m["max_us"].(float64) != 9 {
		t.Fatalf("fallback percentiles = p50 %v p99 %v max %v", m["p50_us"], m["p99_us"], m["max_us"])
	}
}

func TestMergeStatsEmpty(t *testing.T) {
	if m := MergeStats(nil); len(m) != 0 {
		t.Fatalf("merge of nothing = %v", m)
	}
}
