package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"titant/internal/decision"
	"titant/internal/faultinject"
	"titant/internal/ms"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// policyOpts is streamOpts plus a baseline decision policy, for fleets
// exercising the decide and control-plane routes.
func policyOpts(t *testing.T) func() []ms.Option {
	t.Helper()
	pol, err := decision.Parse([]byte(`{
	  "version": "pol-base",
	  "scenarios": {"default": {"bands": [
	    {"min": 0, "max": 0.5, "action": "approve"},
	    {"min": 0.5, "max": 1, "action": "deny"}
	  ]}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return func() []ms.Option {
		return append(streamOpts(), ms.WithPolicy(pol))
	}
}

// --- breaker unit tests (fake clock) ---

func TestBreakerConsecutiveTrip(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(BreakerConfig{ConsecutiveFails: 3, Cooldown: time.Second}, clock)

	for i := 0; i < 2; i++ {
		if _, ok := b.allow(); !ok {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.record(true, false)
	}
	if b.currentState() != brClosed {
		t.Fatal("tripped before threshold")
	}
	b.allow()
	b.record(true, false)
	if b.currentState() != brOpen {
		t.Fatal("3 consecutive failures did not trip")
	}
	if _, ok := b.allow(); ok {
		t.Fatal("open breaker allowed a call inside cooldown")
	}

	// Cooldown elapses: exactly one half-open probe goes through.
	now = now.Add(time.Second)
	probe, ok := b.allow()
	if !ok || !probe {
		t.Fatalf("half-open probe: probe=%v ok=%v", probe, ok)
	}
	if _, ok := b.allow(); ok {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe succeeds: breaker closes, consecutive counter reset.
	b.record(false, probe)
	if b.currentState() != brClosed {
		t.Fatal("successful probe did not close the breaker")
	}

	// Trip again; failed probe re-opens and restarts the cooldown.
	for i := 0; i < 3; i++ {
		b.allow()
		b.record(true, false)
	}
	now = now.Add(time.Second)
	probe, _ = b.allow()
	b.record(true, probe)
	if b.currentState() != brOpen {
		t.Fatal("failed probe did not re-open")
	}
	if _, ok := b.allow(); ok {
		t.Fatal("re-opened breaker allowed a call before a fresh cooldown")
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{ConsecutiveFails: 100, ErrorRate: 0.5, Window: 10, Cooldown: time.Second},
		func() time.Time { return now })
	// Alternate success/failure: never 100 consecutive, but once the
	// window fills at 50% failures the rate condition trips.
	for i := 0; i < 10; i++ {
		if b.currentState() == brOpen {
			break
		}
		b.allow()
		b.record(i%2 == 0, false)
	}
	if b.currentState() != brOpen {
		t.Fatal("50% error rate over a full window did not trip")
	}
}

func TestBreakerProbeCancelReleasesSlot(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{ConsecutiveFails: 1, Cooldown: time.Second}, func() time.Time { return now })
	b.allow()
	b.record(true, false)
	now = now.Add(time.Second)
	probe, ok := b.allow()
	if !ok {
		t.Fatal("no probe after cooldown")
	}
	b.cancelProbe(probe)
	if _, ok := b.allow(); !ok {
		t.Fatal("cancelled probe did not release the half-open slot")
	}
}

func TestMaxRetryAfter(t *testing.T) {
	mk := func(ra string) upstream {
		h := http.Header{}
		if ra != "" {
			h.Set("Retry-After", ra)
		}
		return upstream{status: 429, header: h}
	}
	if got := maxRetryAfter([]upstream{mk("3"), mk("11"), mk("7"), {}}); got != "11" {
		t.Fatalf("max Retry-After = %q, want 11", got)
	}
	if got := maxRetryAfter([]upstream{mk(""), {}}); got != "" {
		t.Fatalf("no Retry-After anywhere, got %q", got)
	}
}

// --- wire-level tests against scripted fake shards ---

// fakeShard is a minimal shard-surface HTTP server whose behavior per
// request is scripted by fn (return status, body).
func fakeShard(t *testing.T, fn http.HandlerFunc) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(fn)
	t.Cleanup(hs.Close)
	return hs
}

// userOwnedBy finds a user id that ms.ShardOf maps to the given shard.
func userOwnedBy(t *testing.T, shard, n int) int32 {
	t.Helper()
	for u := 0; u < 10000; u++ {
		if ms.ShardOf(txn.UserID(u), n) == shard {
			return int32(u)
		}
	}
	t.Fatalf("no user maps to shard %d of %d", shard, n)
	return -1
}

func newTestRouter(t *testing.T, urls []string, opts ...Option) *Router {
	t.Helper()
	rt, err := New(urls, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func doReq(t *testing.T, h http.Handler, method, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestRouterRetriesTransient: a shard failing its first two attempts
// with 500s answers on the third; the idempotent single score retries
// through and succeeds, and the retry counter shows it.
func TestRouterRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":{"code":"boom"}}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn_id":1,"score":0.25,"fraud":false}`)
	})
	rt := newTestRouter(t, []string{shard.URL},
		WithRetries(2, time.Millisecond, 5*time.Millisecond))
	w := doReq(t, rt.Handler(), http.MethodPost, "/v1/score", []byte(`{"id":1,"from":3}`), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("shard saw %d attempts, want 3", got)
	}
	if got := rt.retried.Load(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

// TestRouterIngestAtMostOnce: the acceptance proof that retries never
// duplicate ingest side effects. A drop_response fault delivers every
// request but loses every reply — the worst case for a naive retrier.
// Without an idempotency key the shard must see exactly one delivery
// per request; with the caller's explicit X-Idempotency-Key opt-in the
// retries flow (and the shard sees the replays the caller promised to
// dedup). Score, being idempotent, retries through the same fault.
func TestRouterIngestAtMostOnce(t *testing.T) {
	var ingests, scores atomic.Int64
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/ingest":
			ingests.Add(1)
			fmt.Fprint(w, `{"ingested":1}`)
		case "/v1/score":
			scores.Add(1)
			fmt.Fprint(w, `{"txn_id":1,"score":0.5}`)
		}
	})
	sc := &faultinject.Scenario{Seed: 1, Rules: []faultinject.Rule{
		{Shard: 0, Kind: faultinject.KindDropResponse},
	}}
	tr := faultinject.NewTransport(nil, sc, faultinject.ShardByHost([]string{shard.URL}))
	rt := newTestRouter(t, []string{shard.URL},
		WithTransport(tr),
		WithRetries(2, time.Millisecond, 5*time.Millisecond),
		WithBreaker(BreakerConfig{ConsecutiveFails: 100}))

	body := []byte(`{"id":1,"from":3,"amount":10}`)
	w := doReq(t, rt.Handler(), http.MethodPost, "/v1/ingest", body, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("dropped-reply ingest: %d, want 503", w.Code)
	}
	if got := ingests.Load(); got != 1 {
		t.Fatalf("at-most-once violated: shard ingested %d times for one request", got)
	}

	// The caller opts into replays: retries now flow (1 + 2 retries).
	doReq(t, rt.Handler(), http.MethodPost, "/v1/ingest", body, map[string]string{"X-Idempotency-Key": "k-1"})
	if got := ingests.Load() - 1; got != 3 {
		t.Fatalf("idempotent ingest saw %d deliveries, want 3", got)
	}

	// Idempotent reads retry by default through the same fault.
	doReq(t, rt.Handler(), http.MethodPost, "/v1/score", body, nil)
	if got := scores.Load(); got != 3 {
		t.Fatalf("score saw %d deliveries, want 3", got)
	}
	if fwd := tr.Forwarded(); fwd != 7 {
		t.Fatalf("chaos proxy forwarded %d requests, want 7", fwd)
	}
}

// TestRouterDeadlineBudget: a caller-supplied X-Deadline-Ms bounds the
// whole call; a shard slower than the budget yields a fast 504
// deadline_exceeded, not a 2s hang, and the deadline header reaching
// the shard never exceeds what the caller offered.
func TestRouterDeadlineBudget(t *testing.T) {
	var gotDeadline atomic.Int64
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(HeaderDeadline); v != "" {
			var msv int64
			fmt.Sscanf(v, "%d", &msv)
			gotDeadline.Store(msv)
		}
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
		w.WriteHeader(http.StatusOK)
	})
	rt := newTestRouter(t, []string{shard.URL})
	start := time.Now()
	w := doReq(t, rt.Handler(), http.MethodPost, "/v1/score", []byte(`{"id":1,"from":3}`),
		map[string]string{HeaderDeadline: "100"})
	elapsed := time.Since(start)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code != ms.CodeDeadlineExceeded {
		t.Fatalf("envelope %s", w.Body.String())
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("budgeted call took %v, want well under the shard's 2s", elapsed)
	}
	if d := gotDeadline.Load(); d <= 0 || d > 100 {
		t.Fatalf("shard saw X-Deadline-Ms %d, want (0,100]", d)
	}
	if rt.deadlines.Load() == 0 {
		t.Fatal("deadline_exhausted counter did not move")
	}
}

// TestRouterBreakerOpensAndRecovers: a shard that starts failing trips
// its breaker (visible in /v1/stats), calls then fail fast without
// touching the shard, and after the shard heals the cooldown expires,
// a half-open probe goes through and the breaker closes again.
func TestRouterBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	var calls atomic.Int64
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			http.Error(w, `{"error":{"code":"boom"}}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn_id":1,"score":0.5}`)
	})
	rt := newTestRouter(t, []string{shard.URL},
		WithRetries(0, 0, 0),
		WithBreaker(BreakerConfig{ConsecutiveFails: 3, Cooldown: 50 * time.Millisecond}))
	h := rt.Handler()
	body := []byte(`{"id":1,"from":3}`)

	failing.Store(true)
	for i := 0; i < 3; i++ {
		doReq(t, h, http.MethodPost, "/v1/score", body, nil)
	}
	if st := rt.brk[0].currentState(); st != brOpen {
		t.Fatalf("breaker state %s after 3 failures, want open", breakerStateName(st))
	}
	// Open circuit: the call fails fast and the shard is not touched.
	before := calls.Load()
	w := doReq(t, h, http.MethodPost, "/v1/score", body, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit score: %d, want 503", w.Code)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a call through to the shard")
	}

	// Shard heals; after the cooldown one probe closes the circuit.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	w = doReq(t, h, http.MethodPost, "/v1/score", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("post-recovery probe: %d (%s)", w.Code, w.Body.String())
	}
	if st := rt.brk[0].currentState(); st != brClosed {
		t.Fatalf("breaker state %s after successful probe, want closed", breakerStateName(st))
	}

	// The lifecycle is visible in the stats section.
	var stats map[string]interface{}
	if code := getJSON(t, h, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	brk := stats["router"].(map[string]interface{})["breakers"].([]interface{})[0].(map[string]interface{})
	if brk["state"] != "closed" || brk["opens"].(float64) < 1 || brk["probes"].(float64) < 1 {
		t.Fatalf("breaker stats = %v", brk)
	}
}

// TestRouterHedging: with hedging enabled, a request stuck behind a
// one-off slow attempt is answered by the hedge leg long before the
// slow leg finishes.
func TestRouterHedging(t *testing.T) {
	var calls atomic.Int64
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn_id":1,"score":0.5}`)
	})
	rt := newTestRouter(t, []string{shard.URL}, WithHedge(20*time.Millisecond))
	start := time.Now()
	w := doReq(t, rt.Handler(), http.MethodPost, "/v1/score", []byte(`{"id":1,"from":3}`), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged call took %v, slow leg was not beaten", elapsed)
	}
	if rt.hedges.Load() < 1 || rt.hedgeWins.Load() < 1 {
		t.Fatalf("hedges=%d wins=%d, want both >= 1", rt.hedges.Load(), rt.hedgeWins.Load())
	}
}

// TestRouterBatch429RetryAfterMax: when shards shed with different
// Retry-After hints the relayed 429 carries the max across shards — a
// caller backing off a fleet waits for the slowest shard.
func TestRouterBatch429RetryAfterMax(t *testing.T) {
	mk := func(ra string) *httptest.Server {
		return fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", ra)
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"rate_limited","message":"shed"}}`)
		})
	}
	s0, s1 := mk("3"), mk("9")
	rt := newTestRouter(t, []string{s0.URL, s1.URL}, WithRetries(0, 0, 0))
	u0, u1 := userOwnedBy(t, 0, 2), userOwnedBy(t, 1, 2)
	body := []byte(fmt.Sprintf(`{"transactions":[{"id":1,"from":%d},{"id":2,"from":%d}]}`, u0, u1))
	w := doReq(t, rt.Handler(), http.MethodPost, "/v1/score/batch", body, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "9" {
		t.Fatalf("Retry-After %q, want max across shards (9)", ra)
	}
}

// TestRouterBatchPartialDegradation: losing one of two shards degrades
// only its items — the healthy shard's verdicts are real, the lost
// shard's carry typed shard_unavailable errors, and decide items fall
// back fail-closed to "review". Ingest reports the failed slice instead
// of lying about totals.
func TestRouterBatchPartialDegradation(t *testing.T) {
	f := newFleet(t, 2, policyOpts(t),
		WithRetries(1, time.Millisecond, 5*time.Millisecond),
		WithTimeout(time.Second))
	h := f.rt.Handler()
	u0, u1 := userOwnedBy(t, 0, 2), userOwnedBy(t, 1, 2)
	f.web[0].Close() // shard 0 dies

	body := []byte(fmt.Sprintf(
		`{"transactions":[{"id":1,"from":%d,"amount":10},{"id":2,"from":%d,"amount":10}]}`, u0, u1))
	w := doReq(t, h, http.MethodPost, "/v1/score/batch", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("partially-degraded batch: %d (%s)", w.Code, w.Body.String())
	}
	var resp struct {
		Degraded int               `json:"degraded"`
		Verdicts []json.RawMessage `json:"verdicts"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded != 1 || len(resp.Verdicts) != 2 {
		t.Fatalf("degraded=%d verdicts=%d, want 1 and 2", resp.Degraded, len(resp.Verdicts))
	}
	var dv ms.DegradedVerdict
	if err := json.Unmarshal(resp.Verdicts[0], &dv); err != nil {
		t.Fatal(err)
	}
	if !dv.Degraded || dv.TxnID != 1 || dv.Error == nil ||
		dv.Error.Code != ms.CodeShardUnavailable || dv.Error.Shard != 0 {
		t.Fatalf("degraded item = %s", resp.Verdicts[0])
	}
	var v ms.Verdict
	if err := json.Unmarshal(resp.Verdicts[1], &v); err != nil || v.TxnID != 2 {
		t.Fatalf("healthy item = %s (err %v)", resp.Verdicts[1], err)
	}

	// Decide: the degraded item carries the fail-closed fallback action.
	w = doReq(t, h, http.MethodPost, "/v1/decide/batch", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded decide batch: %d", w.Code)
	}
	var dresp struct {
		Degraded  int               `json:"degraded"`
		Decisions []json.RawMessage `json:"decisions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dresp); err != nil {
		t.Fatal(err)
	}
	var dd ms.DegradedDecision
	if err := json.Unmarshal(dresp.Decisions[0], &dd); err != nil {
		t.Fatal(err)
	}
	if dd.Action != ms.FallbackActionReview || !dd.Degraded || dd.Error.Code != ms.CodeShardUnavailable {
		t.Fatalf("degraded decision = %s", dresp.Decisions[0])
	}

	// Single decide to the dead shard's user: still 200, still review.
	w = doReq(t, h, http.MethodPost, "/v1/decide",
		[]byte(fmt.Sprintf(`{"id":7,"from":%d,"amount":10}`, u0)), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("single degraded decide: %d", w.Code)
	}
	var sd ms.DegradedDecision
	if err := json.Unmarshal(w.Body.Bytes(), &sd); err != nil {
		t.Fatal(err)
	}
	if sd.Action != ms.FallbackActionReview || sd.TxnID != 7 {
		t.Fatalf("single degraded decision = %s", w.Body.String())
	}

	// Single score to the dead shard's user: typed 503.
	w = doReq(t, h, http.MethodPost, "/v1/score",
		[]byte(fmt.Sprintf(`{"id":8,"from":%d,"amount":10}`, u0)), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("single degraded score: %d, want 503", w.Code)
	}

	// Ingest batch: the healthy slice lands, the dead slice is reported.
	w = doReq(t, h, http.MethodPost, "/v1/ingest/batch", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded ingest batch: %d", w.Code)
	}
	var ir struct {
		Ingested     int `json:"ingested"`
		Failed       int `json:"failed"`
		FailedShards []struct {
			Shard int          `json:"shard"`
			Error ms.ItemError `json:"error"`
		} `json:"failed_shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 1 || ir.Failed != 1 || len(ir.FailedShards) != 1 ||
		ir.FailedShards[0].Shard != 0 || ir.FailedShards[0].Error.Code != ms.CodeShardUnavailable {
		t.Fatalf("degraded ingest = %s", w.Body.String())
	}

	// Stats still answers, naming the unreachable shard.
	var stats map[string]interface{}
	if code := getJSON(t, h, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats on degraded fleet: %d", code)
	}
	router := stats["router"].(map[string]interface{})
	if unr := router["unreachable"].([]interface{}); len(unr) != 1 || unr[0].(float64) != 0 {
		t.Fatalf("stats unreachable = %v", router["unreachable"])
	}
}

// TestRouterCallerQuotaThroughWireTier: per-caller admission quotas on
// the shards hold through the router because X-Caller rides the proxied
// sub-requests. Caller A exhausting its burst gets 429s with Retry-After
// while caller B keeps flowing.
func TestRouterCallerQuotaThroughWireTier(t *testing.T) {
	f := newFleet(t, 1, func() []ms.Option {
		return append(streamOpts(), ms.WithCallerQuota(0.001, 2))
	}, WithRetries(0, 0, 0))
	h := f.rt.Handler()
	body := []byte(`{"id":1,"from":3,"amount":10}`)

	for i := 0; i < 2; i++ {
		if w := doReq(t, h, http.MethodPost, "/v1/score", body, map[string]string{"X-Caller": "alpha"}); w.Code != http.StatusOK {
			t.Fatalf("alpha call %d inside burst: %d (%s)", i, w.Code, w.Body.String())
		}
	}
	w := doReq(t, h, http.MethodPost, "/v1/score", body, map[string]string{"X-Caller": "alpha"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("alpha over quota: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("quota 429 through the router lost its Retry-After")
	}
	if w := doReq(t, h, http.MethodPost, "/v1/score", body, map[string]string{"X-Caller": "beta"}); w.Code != http.StatusOK {
		t.Fatalf("beta blocked by alpha's quota: %d (%s)", w.Code, w.Body.String())
	}
	if st := f.servers[0].AdmissionStats(); st.Callers < 2 {
		t.Fatalf("shard tracked %d callers, want >= 2 — X-Caller not propagating", st.Callers)
	}
}

// TestRouterControlMidReplicationFailure: a policy swap that dies
// mid-ring answers with the failed shard's index and how far it got;
// the shards before it hold the new version. The swap is idempotent, so
// the operator's retry after the shard heals converges the fleet.
func TestRouterControlMidReplicationFailure(t *testing.T) {
	pol1 := []byte(`{
	  "version": "pol-1",
	  "scenarios": {"default": {"bands": [
	    {"min": 0, "max": 0.5, "action": "approve"},
	    {"min": 0.5, "max": 1, "action": "deny"}
	  ]}}
	}`)
	f := newFleet(t, 3, policyOpts(t), WithRetries(0, 0, 0))

	// Rebuild the ring with shard 1 behind a kill-switch proxy.
	var failing atomic.Bool
	inner := f.web[1].Config.Handler
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() && r.Method == http.MethodPost {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close() // mid-replication connection failure
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)
	rt := newTestRouter(t, []string{f.web[0].URL, proxy.URL, f.web[2].URL}, WithRetries(0, 0, 0))
	h := rt.Handler()

	if w := doReq(t, h, http.MethodPost, "/v1/policy", pol1, nil); w.Code != http.StatusOK {
		t.Fatalf("baseline swap: %d (%s)", w.Code, w.Body.String())
	}

	pol2 := bytes.ReplaceAll(pol1, []byte("pol-1"), []byte("pol-2"))
	failing.Store(true)
	w := doReq(t, h, http.MethodPost, "/v1/policy", pol2, nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("mid-ring failure: %d, want 502", w.Code)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "shard_unreachable" ||
		!bytes.Contains([]byte(env.Error.Message), []byte("shard 1")) ||
		!bytes.Contains([]byte(env.Error.Message), []byte("applied to 1 of 3 shards")) {
		t.Fatalf("partial-application envelope = %s", w.Body.String())
	}
	// The ring is mixed exactly as the message says.
	if v := f.servers[0].PolicyVersion(); v != "pol-2" {
		t.Fatalf("shard 0 policy %q, want pol-2", v)
	}
	for _, si := range []int{1, 2} {
		if v := f.servers[si].PolicyVersion(); v != "pol-1" {
			t.Fatalf("shard %d policy %q, want pol-1 (swap must stop at the failure)", si, v)
		}
	}

	// Shard heals; the idempotent retry converges the fleet.
	failing.Store(false)
	if w := doReq(t, h, http.MethodPost, "/v1/policy", pol2, nil); w.Code != http.StatusOK {
		t.Fatalf("convergence retry: %d (%s)", w.Code, w.Body.String())
	}
	for si, srv := range f.servers {
		if v := srv.PolicyVersion(); v != "pol-2" {
			t.Fatalf("shard %d policy %q after retry, want pol-2", si, v)
		}
	}
}

// TestRouterControlGetFailover: GET /v1/policy fails over past a dead
// shard 0 instead of erroring — any shard can answer a lockstep read.
func TestRouterControlGetFailover(t *testing.T) {
	pol := []byte(`{
	  "version": "pol-9",
	  "scenarios": {"default": {"bands": [
	    {"min": 0, "max": 1, "action": "approve"}
	  ]}}
	}`)
	f := newFleet(t, 3, policyOpts(t), WithRetries(0, 0, 0), WithTimeout(time.Second))
	h := f.rt.Handler()
	if w := doReq(t, h, http.MethodPost, "/v1/policy", pol, nil); w.Code != http.StatusOK {
		t.Fatalf("swap: %d (%s)", w.Code, w.Body.String())
	}
	f.web[0].Close()
	var doc map[string]interface{}
	if code := getJSON(t, h, "/v1/policy", &doc); code != http.StatusOK {
		t.Fatalf("GET with shard 0 down: %d", code)
	}
	if doc["version"] != "pol-9" {
		t.Fatalf("failover GET version = %v", doc["version"])
	}
}

// --- trace propagation through the resilience plane ---

// TestRouterTraceAdoptedThroughRetries: a caller-supplied X-Trace-Id is
// adopted, echoed on the response, and rides every retry attempt — the
// shard sees one consistent ID across all three deliveries.
func TestRouterTraceAdoptedThroughRetries(t *testing.T) {
	const want = "00112233445566778899aabbccddeeff"
	var mu sync.Mutex
	var seen []string
	var calls atomic.Int64
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(telemetry.TraceHeader))
		mu.Unlock()
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":{"code":"boom"}}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn_id":1,"score":0.25,"fraud":false}`)
	})
	rt := newTestRouter(t, []string{shard.URL},
		WithRetries(2, time.Millisecond, 5*time.Millisecond))
	w := doReq(t, rt.Handler(), http.MethodPost, "/v1/score", []byte(`{"id":1,"from":3}`),
		map[string]string{telemetry.TraceHeader: want})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(telemetry.TraceHeader); got != want {
		t.Fatalf("response %s = %q, want the adopted %q", telemetry.TraceHeader, got, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("shard saw %d attempts, want 3", len(seen))
	}
	for i, s := range seen {
		if s != want {
			t.Fatalf("attempt %d carried trace %q, want %q", i, s, want)
		}
	}
}

// TestRouterTraceMintedWhenAbsent: with no caller header the router
// mints a valid ID per request, distinct across requests; a malformed
// caller header is replaced, not echoed.
func TestRouterTraceMintedWhenAbsent(t *testing.T) {
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn_id":1,"score":0.5}`)
	})
	rt := newTestRouter(t, []string{shard.URL})
	h := rt.Handler()
	body := []byte(`{"id":1,"from":3}`)

	w1 := doReq(t, h, http.MethodPost, "/v1/score", body, nil)
	id1 := w1.Header().Get(telemetry.TraceHeader)
	if _, ok := telemetry.ParseTraceID(id1); !ok {
		t.Fatalf("minted trace %q is not a valid 32-hex ID", id1)
	}
	w2 := doReq(t, h, http.MethodPost, "/v1/score", body, nil)
	if id2 := w2.Header().Get(telemetry.TraceHeader); id2 == id1 {
		t.Fatalf("two requests minted the same trace %q", id1)
	}
	w3 := doReq(t, h, http.MethodPost, "/v1/score", body,
		map[string]string{telemetry.TraceHeader: "not-a-trace"})
	if id3 := w3.Header().Get(telemetry.TraceHeader); id3 == "not-a-trace" {
		t.Fatal("malformed caller trace ID was echoed instead of replaced")
	} else if _, ok := telemetry.ParseTraceID(id3); !ok {
		t.Fatalf("replacement trace %q is not valid", id3)
	}
}

// TestRouterTraceHedgedLegsShareID: when a hedge leg is launched both
// legs carry the original trace ID — one trace names the whole race.
func TestRouterTraceHedgedLegsShareID(t *testing.T) {
	const want = "ffeeddccbbaa99887766554433221100"
	var mu sync.Mutex
	var seen []string
	var calls atomic.Int64
	shard := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(telemetry.TraceHeader))
		mu.Unlock()
		if calls.Add(1) == 1 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn_id":1,"score":0.5}`)
	})
	rt := newTestRouter(t, []string{shard.URL}, WithHedge(20*time.Millisecond))
	w := doReq(t, rt.Handler(), http.MethodPost, "/v1/score", []byte(`{"id":1,"from":3}`),
		map[string]string{telemetry.TraceHeader: want})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(telemetry.TraceHeader); got != want {
		t.Fatalf("hedged response trace = %q, want %q", got, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 {
		t.Fatalf("shard saw %d legs, want both", len(seen))
	}
	for i, s := range seen {
		if s != want {
			t.Fatalf("leg %d carried trace %q, want %q", i, s, want)
		}
	}
}

// TestRouterTraceOnDegradedPaths: when the owner shard is gone the trace
// ID survives into every degraded shape — the decide fallback envelope,
// the typed 503 error body, and each degraded batch item — so an outage
// is correlatable even when the caller only kept response bodies.
func TestRouterTraceOnDegradedPaths(t *testing.T) {
	const want = "0123456789abcdef0123456789abcdef"
	hdr := map[string]string{telemetry.TraceHeader: want}
	f := newFleet(t, 2, policyOpts(t), WithRetries(0, 0, 0), WithTimeout(time.Second))
	h := f.rt.Handler()
	u0, u1 := userOwnedBy(t, 0, 2), userOwnedBy(t, 1, 2)
	f.web[0].Close() // shard 0 dies

	// Single decide: fail-closed fallback carries the trace.
	w := doReq(t, h, http.MethodPost, "/v1/decide",
		[]byte(fmt.Sprintf(`{"id":7,"from":%d,"amount":10}`, u0)), hdr)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded decide: %d", w.Code)
	}
	var dd ms.DegradedDecision
	if err := json.Unmarshal(w.Body.Bytes(), &dd); err != nil {
		t.Fatal(err)
	}
	if dd.TraceID != want {
		t.Fatalf("degraded decision trace_id = %q, want %q", dd.TraceID, want)
	}
	if got := w.Header().Get(telemetry.TraceHeader); got != want {
		t.Fatalf("degraded decide header trace = %q, want %q", got, want)
	}

	// Single score: the typed 503 envelope carries the trace.
	w = doReq(t, h, http.MethodPost, "/v1/score",
		[]byte(fmt.Sprintf(`{"id":8,"from":%d,"amount":10}`, u0)), hdr)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded score: %d, want 503", w.Code)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			TraceID string `json:"trace_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ms.CodeShardUnavailable || env.Error.TraceID != want {
		t.Fatalf("503 envelope = %s", w.Body.String())
	}

	// Batch: the dead shard's items carry the trace, item by item.
	body := []byte(fmt.Sprintf(
		`{"transactions":[{"id":1,"from":%d,"amount":10},{"id":2,"from":%d,"amount":10}]}`, u0, u1))
	w = doReq(t, h, http.MethodPost, "/v1/score/batch", body, hdr)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded batch: %d", w.Code)
	}
	var resp struct {
		Verdicts []json.RawMessage `json:"verdicts"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var dv ms.DegradedVerdict
	if err := json.Unmarshal(resp.Verdicts[0], &dv); err != nil {
		t.Fatal(err)
	}
	if !dv.Degraded || dv.TraceID != want {
		t.Fatalf("degraded batch item = %s", resp.Verdicts[0])
	}
}
