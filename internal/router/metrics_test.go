package router

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"titant/internal/telemetry"
)

// promShard serves a scripted exposition page on /metrics and a minimal
// score handler so the router accepts the ring.
func promShard(t *testing.T, page string) *httptest.Server {
	t.Helper()
	return fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprint(w, page)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn_id":1,"score":0.5}`)
	})
}

// TestRouterMetricsSelfScrape: GET /metrics on the router merges its own
// series with a re-labeled scrape of every shard — each shard's series
// reappear stamped shard="<i>", the page lints clean, and TYPE is
// declared once per family even when every shard carries it.
func TestRouterMetricsSelfScrape(t *testing.T) {
	mk := func(scored int) string {
		return fmt.Sprintf(`# HELP titant_scoring_scored_total transactions scored
# TYPE titant_scoring_scored_total counter
titant_scoring_scored_total %d
`, scored)
	}
	s0, s1 := promShard(t, mk(5)), promShard(t, mk(7))
	rt := newTestRouter(t, []string{s0.URL, s1.URL})

	w := doReq(t, rt.Handler(), http.MethodGet, "/metrics", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q, want the 0.0.4 exposition type", ct)
	}
	page := w.Body.Bytes()
	if err := telemetry.Lint(page); err != nil {
		t.Fatalf("merged page fails lint: %v", err)
	}
	sc, err := telemetry.ParseExpo(page)
	if err != nil {
		t.Fatal(err)
	}
	set := sc.SeriesSet()
	for _, want := range []string{
		`titant_scoring_scored_total{shard=0}`,
		`titant_scoring_scored_total{shard=1}`,
		`titant_router_singles_total`,
		`titant_router_shards`,
		`titant_router_breaker_state{shard=0}{state=closed}`,
		`titant_router_scrape_unreachable`,
	} {
		if !set[want] {
			t.Errorf("merged page is missing series %s", want)
		}
	}
	if n := strings.Count(string(page), "# TYPE titant_scoring_scored_total"); n != 1 {
		t.Fatalf("TYPE declared %d times for the merged family, want once", n)
	}
}

// TestRouterMetricsUnreachableShardDegrades: a dead shard never fails
// the page — its series are absent and the unreachable gauge counts it.
func TestRouterMetricsUnreachableShardDegrades(t *testing.T) {
	page := `# TYPE titant_scoring_scored_total counter
titant_scoring_scored_total 5
`
	s0, s1 := promShard(t, page), promShard(t, page)
	rt := newTestRouter(t, []string{s0.URL, s1.URL}, WithRetries(0, 0, 0))
	s1.Close()

	w := doReq(t, rt.Handler(), http.MethodGet, "/metrics", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status with a dead shard: %d", w.Code)
	}
	sc, err := telemetry.ParseExpo(w.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	set := sc.SeriesSet()
	if !set[`titant_scoring_scored_total{shard=0}`] {
		t.Error("healthy shard's series missing")
	}
	if set[`titant_scoring_scored_total{shard=1}`] {
		t.Error("dead shard's series present")
	}
	if !strings.Contains(w.Body.String(), "titant_router_scrape_unreachable 1") {
		t.Fatalf("unreachable gauge should read 1:\n%s", w.Body.String())
	}
}

// TestRouterMetricsTypeConflictIs502: a shard page whose TYPE disagrees
// with the fleet's is a bug, not a merge policy — the router answers
// 502 shard_bad_response instead of rendering a corrupt page.
func TestRouterMetricsTypeConflictIs502(t *testing.T) {
	counter := `# TYPE titant_scoring_scored_total counter
titant_scoring_scored_total 5
`
	gauge := `# TYPE titant_scoring_scored_total gauge
titant_scoring_scored_total 5
`
	s0, s1 := promShard(t, counter), promShard(t, gauge)
	rt := newTestRouter(t, []string{s0.URL, s1.URL})
	w := doReq(t, rt.Handler(), http.MethodGet, "/metrics", nil, nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("TYPE conflict: status %d, want 502", w.Code)
	}
	if !strings.Contains(w.Body.String(), "shard_bad_response") {
		t.Fatalf("envelope = %s", w.Body.String())
	}
}

// TestRouterDebugTrace: GET /v1/debug/trace answers with the wire-tier
// stage aggregation after traffic has flowed.
func TestRouterDebugTrace(t *testing.T) {
	shard := promShard(t, "")
	rt := newTestRouter(t, []string{shard.URL})
	h := rt.Handler()
	doReq(t, h, http.MethodPost, "/v1/score", []byte(`{"id":1,"from":3}`), nil)

	w := doReq(t, h, http.MethodGet, "/v1/debug/trace", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	body, _ := io.ReadAll(w.Body)
	if !strings.Contains(string(body), `"route"`) {
		t.Fatalf("trace dump carries no route stage: %s", body)
	}
}
