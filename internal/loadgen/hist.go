package loadgen

import (
	"sync/atomic"
	"time"
)

// hist is a lock-free log-bucketed latency histogram: geometric bucket
// bounds from 1µs to ~100s (ratio 1.25, ~84 buckets), atomic counts, so
// worker goroutines record without contention and percentile reads are
// O(buckets). Resolution is the bucket ratio (25%), plenty for p50/p99/
// p999 reporting; the exact maximum is tracked separately.
type hist struct {
	bounds []time.Duration
	counts []atomic.Int64
	total  atomic.Int64
	max    atomic.Int64
}

func newHist() *hist {
	var bounds []time.Duration
	for b := float64(time.Microsecond); b < float64(100*time.Second); b *= 1.25 {
		bounds = append(bounds, time.Duration(b))
	}
	return &hist{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *hist) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// quantile returns the q-th latency percentile (0 < q < 1), reading the
// bucket upper bound the q-th sample falls in (the overflow bucket and
// the top quantiles report the tracked max).
func (h *hist) quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i >= len(h.bounds) {
				break
			}
			b := h.bounds[i]
			if m := time.Duration(h.max.Load()); b > m {
				return m
			}
			return b
		}
	}
	return time.Duration(h.max.Load())
}
