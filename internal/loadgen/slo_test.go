package loadgen

import (
	"strings"
	"testing"
)

func sloReport() *Report {
	return &Report{
		Offered: 1000,
		Errors:  2,
		Latency: LatencyReport{P50: 800, P99: 4000, P999: 9000, Max: 20000},
		Recall:  0.80,
		Scenarios: []ScenarioReport{
			{Kind: "card_testing", Replayed: 40, Flagged: 36, Recall: 0.90},
			{Kind: "account_takeover", Replayed: 30, Flagged: 21, Recall: 0.70},
		},
	}
}

func TestCheckSLOPasses(t *testing.T) {
	s := &SLO{
		MaxP99Ms:     5,
		MaxP999Ms:    10,
		MaxErrorRate: 0.01,
		MinRecall: map[string]float64{
			"overall":      0.75,
			"card_testing": 0.85,
		},
	}
	if v := sloReport().CheckSLO(s); v != nil {
		t.Fatalf("clean run flagged: %v", v)
	}
}

func TestCheckSLOLatencyAndErrors(t *testing.T) {
	s := &SLO{MaxP99Ms: 3, MaxP999Ms: 8, MaxErrorRate: 0.001}
	v := sloReport().CheckSLO(s)
	if len(v) != 3 {
		t.Fatalf("want 3 violations, got %v", v)
	}
	for i, frag := range []string{"p99 latency 4.00ms", "p99.9 latency 9.00ms", "error rate 0.0020"} {
		if !strings.Contains(v[i], frag) {
			t.Fatalf("violation %d = %q, want fragment %q", i, v[i], frag)
		}
	}
}

func TestCheckSLORecallFloors(t *testing.T) {
	s := &SLO{MinRecall: map[string]float64{
		"account_takeover": 0.75, // report has 0.70 -> violation
		"card_testing":     0.85, // report has 0.90 -> ok
		"overall":          0.85, // report has 0.80 -> violation
	}}
	v := sloReport().CheckSLO(s)
	if len(v) != 2 {
		t.Fatalf("want 2 violations, got %v", v)
	}
	if !strings.Contains(v[0], `"account_takeover" recall 0.700`) {
		t.Fatalf("violation 0 = %q", v[0])
	}
	if !strings.Contains(v[1], "overall recall 0.800") {
		t.Fatalf("violation 1 = %q", v[1])
	}
}

func TestCheckSLOMissingScenarioIsViolation(t *testing.T) {
	s := &SLO{MinRecall: map[string]float64{"mule_ring": 0.5}}
	v := sloReport().CheckSLO(s)
	if len(v) != 1 || !strings.Contains(v[0], `"mule_ring"`) || !strings.Contains(v[0], "absent") {
		t.Fatalf("missing scenario: %v", v)
	}
}

func TestCheckSLOZeroCeilingsUnchecked(t *testing.T) {
	if v := sloReport().CheckSLO(&SLO{}); v != nil {
		t.Fatalf("empty SLO produced violations: %v", v)
	}
}

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO([]byte(`{
	  "max_p99_ms": 5,
	  "max_error_rate": 0.01,
	  "min_recall": {"overall": 0.7, "card_testing": 0.8}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxP99Ms != 5 || s.MaxErrorRate != 0.01 || s.MinRecall["card_testing"] != 0.8 {
		t.Fatalf("parsed = %+v", s)
	}
	if _, err := ParseSLO([]byte(`{"max_p99ms_typo": 5}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSLO([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
