package loadgen

import (
	"fmt"

	"titant/internal/rng"
	"titant/internal/txn"
)

// Op is one request kind the generator issues.
type Op uint8

const (
	OpScore Op = iota
	OpDecide
	OpIngest
	numOps
)

// String names the op for reports.
func (o Op) String() string {
	switch o {
	case OpScore:
		return "score"
	case OpDecide:
		return "decide"
	case OpIngest:
		return "ingest"
	}
	return "unknown"
}

// OpMix weights the traffic across request kinds. Weights are relative;
// they need not sum to 1. A zero-valued mix defaults to score-only.
type OpMix struct {
	Score  float64 `json:"score"`
	Decide float64 `json:"decide"`
	Ingest float64 `json:"ingest"`
}

// DefaultOpMix models a serving tier: mostly decisions, some raw scores,
// a trickle of ingest keeping the live window current.
func DefaultOpMix() OpMix { return OpMix{Score: 0.25, Decide: 0.65, Ingest: 0.10} }

func (m OpMix) normalize() (OpMix, error) {
	if m.Score < 0 || m.Decide < 0 || m.Ingest < 0 {
		return m, fmt.Errorf("loadgen: negative op weight %+v", m)
	}
	total := m.Score + m.Decide + m.Ingest
	if total == 0 {
		return OpMix{Score: 1}, nil
	}
	return OpMix{Score: m.Score / total, Decide: m.Decide / total, Ingest: m.Ingest / total}, nil
}

// backgroundUserBase offsets synthetic background user IDs far above any
// world user, so background traffic is cold-start load that can never
// collide with replayed scenario users or pollute their statistics.
const backgroundUserBase = 1 << 28

// trafficSampler draws the synthetic side of the workload: which op an
// arrival performs, and background transactions between Zipf-distributed
// users — the heavy-tailed "some users transact constantly, most rarely"
// shape of a real payment graph.
type trafficSampler struct {
	r      *rng.RNG
	zipf   *rng.Zipf
	users  int
	mix    OpMix
	nextID txn.TxnID
}

// newTrafficSampler builds a sampler over `users` synthetic background
// users with Zipf exponent s (s <= 1 falls back to 1.07, a typical
// web-workload skew). IDs for generated transactions start at idBase.
func newTrafficSampler(r *rng.RNG, users int, s float64, mix OpMix, idBase txn.TxnID) (*trafficSampler, error) {
	if users < 2 {
		users = 2
	}
	if s <= 1 {
		s = 1.07
	}
	nm, err := mix.normalize()
	if err != nil {
		return nil, err
	}
	return &trafficSampler{
		r:      r,
		zipf:   rng.NewZipf(users, s),
		users:  users,
		mix:    nm,
		nextID: idBase,
	}, nil
}

// op draws which request kind this arrival performs.
func (ts *trafficSampler) op() Op {
	u := ts.r.Float64()
	switch {
	case u < ts.mix.Score:
		return OpScore
	case u < ts.mix.Score+ts.mix.Decide:
		return OpDecide
	default:
		return OpIngest
	}
}

// scoringOp draws a score-or-decide op with the mix's relative weights,
// for replayed scenario transactions (which must be scored, not
// ingested, to measure detection).
func (ts *trafficSampler) scoringOp() Op {
	total := ts.mix.Score + ts.mix.Decide
	if total == 0 || ts.r.Float64()*total < ts.mix.Score {
		return OpScore
	}
	return OpDecide
}

// user draws one background user, rank 0 hottest.
func (ts *trafficSampler) user() txn.UserID {
	return txn.UserID(backgroundUserBase + ts.zipf.Sample(ts.r))
}

// background draws one synthetic background transaction: two distinct
// Zipf users, log-normal-ish amount, uniform time-of-day.
func (ts *trafficSampler) background() txn.Transaction {
	from := ts.user()
	to := ts.user()
	for to == from {
		to = ts.user()
	}
	t := txn.Transaction{
		ID:     ts.nextID,
		Sec:    int32(ts.r.Intn(86400)),
		From:   from,
		To:     to,
		Amount: float32(50 + ts.r.Float64()*500),
	}
	ts.nextID++
	return t
}
