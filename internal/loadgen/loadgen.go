package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"titant/internal/decision"
	"titant/internal/rng"
	"titant/internal/synth"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// Config parameterises one load run.
type Config struct {
	Schedule Schedule      // arrival envelope (required)
	Duration time.Duration // run length (required)
	Seed     uint64        // workload RNG seed; same seed, same workload

	Mix   OpMix   // score/decide/ingest weights (zero value: score-only)
	Users int     // background user population (Zipf-distributed)
	ZipfS float64 // Zipf exponent; <= 1 uses the 1.07 default

	// Shards records the width of the engine under test (an in-process
	// sharded engine's shard count, or the ring size behind a router);
	// 0 reports as 1. Informational: it flows into the report so a run
	// archive says what topology produced the numbers.
	Shards int

	// MaxOutstanding caps the requests concurrently in flight on the
	// client side (0: 4096). Arrivals beyond the cap still keep their
	// scheduled start time — they queue client-side and the wait shows up
	// in their measured latency, never as a thinned arrival process.
	MaxOutstanding int

	// TraceSample, when positive, keeps the N slowest requests' trace
	// IDs (as answered in the X-Trace-Id response header) in the report,
	// so a slow run's report links straight into the serving tier's
	// GET /v1/debug/trace exemplars. Only targets that see response
	// headers (HTTPTarget) can sample; in-process targets report none.
	TraceSample int

	// Replay is labeled scenario traffic (typically the composed world's
	// test window) spread evenly across the run's arrivals. Replayed
	// transactions are always scored or decided — never ingested — so
	// every labeled transaction produces a detection verdict.
	Replay []txn.Transaction
	// Manifest is the ground truth Replay was generated from; when set,
	// the report grades verdicts into per-scenario recall and precision.
	Manifest *synth.Manifest
}

// ScenarioReport grades one scenario kind's replayed fraud.
type ScenarioReport struct {
	Kind     string  `json:"kind"`
	Replayed int     `json:"replayed"` // labeled fraud transactions replayed
	Flagged  int     `json:"flagged"`  // of those, flagged by the engine
	Shed     int     `json:"shed"`     // of those, shed by admission control
	Degraded int     `json:"degraded"` // of those, answered with a degraded envelope
	Recall   float64 `json:"recall"`
}

// LatencyReport is the tail-latency summary, microseconds. Latency is
// measured from each request's *scheduled* arrival, so client- or
// server-side queueing delay is included (no coordinated omission).
type LatencyReport struct {
	P50  int64 `json:"p50_us"`
	P99  int64 `json:"p99_us"`
	P999 int64 `json:"p999_us"`
	Max  int64 `json:"max_us"`
}

// Report is the run's JSON result (written next to BENCH_serving.json by
// cmd/titant loadgen).
type Report struct {
	Schedule    string  `json:"schedule"`
	DurationSec float64 `json:"duration_seconds"`
	Seed        uint64  `json:"seed"`
	Shards      int     `json:"shards"` // engine width behind the run (>= 1)

	Offered     int     `json:"offered"`        // scheduled arrivals
	Completed   int64   `json:"completed"`      // requests served 2xx
	Shed        int64   `json:"shed"`           // typed 429 refusals
	Degraded    int64   `json:"degraded"`       // typed degraded envelopes (wire tier fallback)
	Errors      int64   `json:"errors"`         // any other failure
	OfferedRPS  float64 `json:"offered_rps"`    // offered / duration
	Throughput  float64 `json:"throughput_rps"` // completed / wall time
	WallSeconds float64 `json:"wall_seconds"`

	Latency LatencyReport    `json:"latency"`
	Ops     map[string]int64 `json:"ops"` // completed per op kind

	Background        int64 `json:"background_txns"`
	BackgroundFlagged int64 `json:"background_flagged"` // unlabeled; excluded from precision

	Replayed          int64            `json:"replayed_txns"`
	Scenarios         []ScenarioReport `json:"scenarios,omitempty"`
	Recall            float64          `json:"recall"`              // flagged fraud / replayed fraud
	Precision         float64          `json:"precision"`           // flagged fraud / flagged replayed
	FalsePositiveRate float64          `json:"false_positive_rate"` // flagged clean / replayed clean

	// Traces are the slowest sampled requests' trace IDs (Config.
	// TraceSample > 0 against an HTTP target), slowest first.
	Traces []TraceExemplar `json:"trace_samples,omitempty"`
}

// TraceExemplar links one sampled slow request to its trace ID.
type TraceExemplar struct {
	TraceID   string `json:"trace_id"`
	LatencyUS int64  `json:"latency_us"`
}

// Encode renders the report as indented JSON.
func (r *Report) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DecodeReport parses a report written by Encode.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: decode report: %w", err)
	}
	return &r, nil
}

// workItem is one scheduled request, fully drawn before dispatch so the
// workload is a deterministic function of (Config.Seed, Schedule).
type workItem struct {
	at       time.Duration
	op       Op
	t        txn.Transaction
	scenario decision.Scenario
	replay   bool
}

// grade accumulates detection outcomes; counts are tiny next to the
// request work, so a mutex is cheaper than sharding.
type grade struct {
	mu              sync.Mutex
	fraudReplayed   map[string]int // per scenario kind
	fraudFlagged    map[string]int
	fraudShed       map[string]int
	fraudDegraded   map[string]int
	cleanReplayed   int
	cleanFlagged    int
	replayShedClean int
}

// Run executes one open-loop load run against tgt and grades the
// outcome. Cancelling ctx stops dispatching and drains in-flight
// requests; the report covers what ran.
func Run(ctx context.Context, cfg Config, tgt Target) (*Report, error) {
	if cfg.Schedule == nil {
		return nil, errors.New("loadgen: nil schedule")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: non-positive duration")
	}
	if tgt == nil {
		return nil, errors.New("loadgen: nil target")
	}
	items, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}

	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 4096
	}
	sem := make(chan struct{}, maxOut)
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		shed      atomic.Int64
		degraded  atomic.Int64
		errCount  atomic.Int64
		opCounts  [numOps]atomic.Int64
		bgFlagged atomic.Int64
		bgCount   atomic.Int64
		h         = telemetry.NewHistogram(nil)
	)
	var traces *traceCollector
	if cfg.TraceSample > 0 {
		if ts, ok := tgt.(interface {
			SetTraceSink(func(traceID string, d time.Duration))
		}); ok {
			traces = newTraceCollector(cfg.TraceSample)
			ts.SetTraceSink(traces.observe)
		}
	}
	g := &grade{
		fraudReplayed: map[string]int{},
		fraudFlagged:  map[string]int{},
		fraudShed:     map[string]int{},
		fraudDegraded: map[string]int{},
	}
	fraudKind := map[txn.TxnID]string{}
	if cfg.Manifest != nil {
		fraudKind = cfg.Manifest.FraudByTxn()
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
dispatch:
	for i := range items {
		it := &items[i]
		// Open loop: wait for the scheduled arrival (no-op when the
		// dispatcher is behind — the lag lands in measured latency).
		if wait := time.Until(start.Add(it.at)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		wg.Add(1)
		go func(it *workItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			flagged, err := tgt.Do(ctx, it.op, &it.t, it.scenario)
			// Latency from the scheduled arrival, not the dispatch or the
			// semaphore acquisition.
			h.Record(time.Since(start.Add(it.at)))
			switch {
			case err == nil:
				completed.Add(1)
				opCounts[it.op].Add(1)
			case errors.Is(err, ErrShed):
				shed.Add(1)
			case errors.Is(err, ErrDegraded):
				degraded.Add(1)
			default:
				errCount.Add(1)
			}
			if it.replay {
				gradeReplay(g, fraudKind, it, flagged, err)
			} else if it.op != OpIngest {
				bgCount.Add(1)
				if err == nil && flagged {
					bgFlagged.Add(1)
				}
			}
		}(it)
	}
	wg.Wait()
	wall := time.Since(start)

	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	rep := &Report{
		Schedule:    cfg.Schedule.Name(),
		DurationSec: cfg.Duration.Seconds(),
		Seed:        cfg.Seed,
		Shards:      shards,
		Offered:     len(items),
		Completed:   completed.Load(),
		Shed:        shed.Load(),
		Degraded:    degraded.Load(),
		Errors:      errCount.Load(),
		OfferedRPS:  float64(len(items)) / cfg.Duration.Seconds(),
		Throughput:  float64(completed.Load()) / wall.Seconds(),
		WallSeconds: wall.Seconds(),
		Latency: LatencyReport{
			P50:  h.Quantile(0.50).Microseconds(),
			P99:  h.Quantile(0.99).Microseconds(),
			P999: h.Quantile(0.999).Microseconds(),
			Max:  h.Max().Microseconds(),
		},
		Ops:               map[string]int64{},
		Background:        bgCount.Load(),
		BackgroundFlagged: bgFlagged.Load(),
	}
	if traces != nil {
		rep.Traces = traces.samples()
	}
	for op := Op(0); op < numOps; op++ {
		if n := opCounts[op].Load(); n > 0 {
			rep.Ops[op.String()] = n
		}
	}
	fillDetection(rep, g)
	return rep, nil
}

// traceCollector keeps the K slowest sampled trace IDs. Recording takes
// a mutex but runs only for requests that answered with a trace header
// on a run that asked for sampling, off the latency-measured section.
type traceCollector struct {
	mu      sync.Mutex
	entries []TraceExemplar // occupied prefix, unsorted
	minIdx  int
	k       int
}

func newTraceCollector(k int) *traceCollector {
	return &traceCollector{entries: make([]TraceExemplar, 0, k), k: k}
}

func (c *traceCollector) observe(traceID string, d time.Duration) {
	if traceID == "" {
		return
	}
	us := d.Microseconds()
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case len(c.entries) < c.k:
		c.entries = append(c.entries, TraceExemplar{TraceID: traceID, LatencyUS: us})
	case us > c.entries[c.minIdx].LatencyUS:
		c.entries[c.minIdx] = TraceExemplar{TraceID: traceID, LatencyUS: us}
	default:
		return
	}
	c.minIdx = 0
	for i := 1; i < len(c.entries); i++ {
		if c.entries[i].LatencyUS < c.entries[c.minIdx].LatencyUS {
			c.minIdx = i
		}
	}
}

// samples returns the collected exemplars, slowest first.
func (c *traceCollector) samples() []TraceExemplar {
	c.mu.Lock()
	out := make([]TraceExemplar, len(c.entries))
	copy(out, c.entries)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].LatencyUS > out[j].LatencyUS })
	return out
}

// gradeReplay records one replayed transaction's outcome.
func gradeReplay(g *grade, fraudKind map[txn.TxnID]string, it *workItem, flagged bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if kind, isFraud := fraudKind[it.t.ID]; isFraud {
		g.fraudReplayed[kind]++
		switch {
		case err == nil && flagged:
			g.fraudFlagged[kind]++
		case errors.Is(err, ErrShed):
			g.fraudShed[kind]++
		case errors.Is(err, ErrDegraded):
			g.fraudDegraded[kind]++
		}
		return
	}
	g.cleanReplayed++
	if err == nil && flagged {
		g.cleanFlagged++
	} else if errors.Is(err, ErrShed) {
		g.replayShedClean++
	}
}

// fillDetection folds the grade into the report's detection section.
func fillDetection(rep *Report, g *grade) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var kinds []string
	for k := range g.fraudReplayed {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var fraudTotal, flaggedTotal int
	for _, k := range kinds {
		n, f := g.fraudReplayed[k], g.fraudFlagged[k]
		fraudTotal += n
		flaggedTotal += f
		sr := ScenarioReport{Kind: k, Replayed: n, Flagged: f, Shed: g.fraudShed[k], Degraded: g.fraudDegraded[k]}
		if n > 0 {
			sr.Recall = float64(f) / float64(n)
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	rep.Replayed = int64(fraudTotal + g.cleanReplayed)
	if fraudTotal > 0 {
		rep.Recall = float64(flaggedTotal) / float64(fraudTotal)
	}
	if flaggedTotal+g.cleanFlagged > 0 {
		rep.Precision = float64(flaggedTotal) / float64(flaggedTotal+g.cleanFlagged)
	}
	if g.cleanReplayed > 0 {
		rep.FalsePositiveRate = float64(g.cleanFlagged) / float64(g.cleanReplayed)
	}
}

// buildWorkload draws the full deterministic request stream: arrival
// times from the schedule, ops and background transactions from the
// traffic sampler, with the replay set spread evenly across arrivals.
func buildWorkload(cfg Config) ([]workItem, error) {
	arrivals := Arrivals(cfg.Schedule, cfg.Duration, cfg.Seed)
	root := rng.New(cfg.Seed)
	// Background transaction IDs sit far above the replay world's so the
	// manifest join can never alias a synthetic transaction.
	sampler, err := newTrafficSampler(root.Split(1), cfg.Users, cfg.ZipfS, cfg.Mix, txn.TxnID(1)<<40)
	if err != nil {
		return nil, err
	}
	scenarioOf := map[txn.TxnID]decision.Scenario{}
	if cfg.Manifest != nil {
		for i := range cfg.Manifest.Scenarios {
			s := &cfg.Manifest.Scenarios[i]
			sc, err := decision.ParseScenario(s.DecisionScenario)
			if err != nil {
				sc = decision.ScenarioDefault
			}
			for _, id := range s.FraudTxns {
				scenarioOf[id] = sc
			}
		}
	}
	// Spread replay across the run: one replay item every `step` arrivals
	// until the set is exhausted.
	step := 0
	if len(cfg.Replay) > 0 && len(arrivals) > 0 {
		step = len(arrivals) / len(cfg.Replay)
		if step < 1 {
			step = 1
		}
	}
	items := make([]workItem, len(arrivals))
	replayIdx := 0
	for i, at := range arrivals {
		it := &items[i]
		it.at = at
		if step > 0 && i%step == 0 && replayIdx < len(cfg.Replay) {
			it.t = cfg.Replay[replayIdx]
			it.op = sampler.scoringOp()
			it.scenario = scenarioOf[it.t.ID]
			it.replay = true
			replayIdx++
			continue
		}
		it.op = sampler.op()
		it.t = sampler.background()
	}
	return items, nil
}
