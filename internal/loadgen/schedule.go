// Package loadgen is the open-loop load harness: it replays scenario
// traffic and synthetic background load against a scoring engine — in
// process or over HTTP — on arrival schedules that model production
// traffic shapes, and reports throughput, tail latency and detection
// quality (per-scenario recall / precision against the synth manifests)
// as a machine-readable JSON report.
//
// Open loop means arrivals are scheduled by the workload clock, not by
// request completions: a slow server does not slow the arrival process
// down, so queueing delay shows up in the measured latency instead of
// being coordinated away (latency is measured from each request's
// scheduled arrival, the standard defence against coordinated omission).
package loadgen

import (
	"fmt"
	"math"
	"time"

	"titant/internal/rng"
)

// Schedule is an arrival-rate envelope: the instantaneous arrival rate
// (requests/second) at every offset into the run. Arrival times are
// drawn from the non-homogeneous Poisson process with this rate
// function, via thinning against Peak.
type Schedule interface {
	// Name labels the schedule in reports ("constant", "diurnal", "spike").
	Name() string
	// RateAt returns the arrival rate at offset t into the run, in
	// requests per second. Must be <= Peak() everywhere.
	RateAt(t time.Duration) float64
	// Peak is the majorising rate the thinning sampler proposes at.
	Peak() float64
}

// Constant arrives at a flat rate: the baseline SLO workload.
type Constant struct {
	Rate float64 // requests/second
}

func (c Constant) Name() string                 { return "constant" }
func (c Constant) RateAt(time.Duration) float64 { return c.Rate }
func (c Constant) Peak() float64                { return c.Rate }

// Diurnal models the day cycle: a sinusoid from trough to peak and back
// over each Period, starting at the trough. Mean rate is (Trough+Peak)/2.
type Diurnal struct {
	Trough   float64       // requests/second at the quietest point
	PeakRate float64       // requests/second at the busiest point
	Period   time.Duration // one full cycle (a "day" of the run)
}

func (d Diurnal) Name() string { return "diurnal" }

func (d Diurnal) RateAt(t time.Duration) float64 {
	mid := (d.Trough + d.PeakRate) / 2
	amp := (d.PeakRate - d.Trough) / 2
	phase := 2 * math.Pi * float64(t) / float64(d.Period)
	return mid - amp*math.Cos(phase)
}

func (d Diurnal) Peak() float64 { return d.PeakRate }

// Spike is flat base load with a burst window at a higher rate: the
// flash-crowd / attack-burst shape admission control exists for.
type Spike struct {
	Base     float64       // requests/second outside the burst
	Burst    float64       // requests/second inside the burst
	Start    time.Duration // burst onset, offset into the run
	Duration time.Duration // burst length
}

func (s Spike) Name() string { return "spike" }

func (s Spike) RateAt(t time.Duration) float64 {
	if t >= s.Start && t < s.Start+s.Duration {
		return s.Burst
	}
	return s.Base
}

func (s Spike) Peak() float64 {
	return math.Max(s.Base, s.Burst)
}

// ParseSchedule builds a schedule from its CLI name, scaled around rate
// (the schedule's headline requests/second) over a run of the given
// duration: constant arrives flat at rate; diurnal cycles once over the
// run between rate/4 and rate (mean 0.625*rate); spike holds rate/2 with
// a 4*rate burst through the middle fifth of the run.
func ParseSchedule(name string, rate float64, duration time.Duration) (Schedule, error) {
	switch name {
	case "constant", "":
		return Constant{Rate: rate}, nil
	case "diurnal":
		return Diurnal{Trough: rate / 4, PeakRate: rate, Period: duration}, nil
	case "spike":
		return Spike{Base: rate / 2, Burst: 4 * rate, Start: 2 * duration / 5, Duration: duration / 5}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown schedule %q (constant, diurnal, spike)", name)
	}
}

// Arrivals draws the run's arrival offsets from the non-homogeneous
// Poisson process with the schedule's rate function, by thinning: draw
// candidate arrivals from the homogeneous process at Peak, keep each
// with probability RateAt/Peak. Deterministic in seed, sorted ascending.
func Arrivals(s Schedule, duration time.Duration, seed uint64) []time.Duration {
	peak := s.Peak()
	if peak <= 0 || duration <= 0 {
		return nil
	}
	r := rng.New(seed)
	out := make([]time.Duration, 0, int(float64(duration)/float64(time.Second)*peak))
	t := 0.0 // seconds
	limit := duration.Seconds()
	for {
		t += r.ExpFloat64() / peak
		if t >= limit {
			return out
		}
		at := time.Duration(t * float64(time.Second))
		if r.Float64()*peak < s.RateAt(at) {
			out = append(out, at)
		}
	}
}
