package loadgen

import (
	"context"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"titant/internal/decision"
	"titant/internal/rng"
	"titant/internal/synth"
	"titant/internal/txn"
)

// expectedCount numerically integrates a schedule's rate over a window:
// the mean arrival count any correct sampler must track.
func expectedCount(s Schedule, from, to time.Duration) float64 {
	const steps = 1000
	dt := (to - from) / steps
	var sum float64
	for i := 0; i < steps; i++ {
		sum += s.RateAt(from+time.Duration(i)*dt+dt/2) * dt.Seconds()
	}
	return sum
}

// TestArrivalsMatchRateEnvelope is the table-driven schedule test: for
// every schedule shape, the generated arrivals are sorted, in range, and
// every one-second window's count tracks the integral of the rate
// function over that window to within Poisson noise. The seed is fixed,
// so the assertion is deterministic.
func TestArrivalsMatchRateEnvelope(t *testing.T) {
	const duration = 10 * time.Second
	cases := []struct {
		name string
		s    Schedule
	}{
		{"constant", Constant{Rate: 300}},
		{"diurnal", Diurnal{Trough: 60, PeakRate: 400, Period: duration}},
		{"spike", Spike{Base: 100, Burst: 600, Start: 4 * time.Second, Duration: 2 * time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arr := Arrivals(tc.s, duration, 42)
			if len(arr) == 0 {
				t.Fatal("no arrivals generated")
			}
			for i := range arr {
				if arr[i] < 0 || arr[i] >= duration {
					t.Fatalf("arrival %d at %v outside [0, %v)", i, arr[i], duration)
				}
				if i > 0 && arr[i] < arr[i-1] {
					t.Fatalf("arrivals not sorted at %d: %v < %v", i, arr[i], arr[i-1])
				}
			}
			// Whole-run total.
			want := expectedCount(tc.s, 0, duration)
			tol := 6*math.Sqrt(want) + 10
			if got := float64(len(arr)); math.Abs(got-want) > tol {
				t.Fatalf("total arrivals = %v, want %v ± %v", got, want, tol)
			}
			// Per-window counts track the envelope through rate changes.
			window := time.Second
			counts := make([]int, int(duration/window))
			for _, at := range arr {
				counts[int(at/window)]++
			}
			for w := range counts {
				from := time.Duration(w) * window
				want := expectedCount(tc.s, from, from+window)
				tol := 6*math.Sqrt(want) + 10
				if got := float64(counts[w]); math.Abs(got-want) > tol {
					t.Fatalf("window %d: %v arrivals, want %v ± %v", w, got, want, tol)
				}
			}
			if tc.name == "spike" {
				// The burst window must actually burst: its windows carry
				// several times the base-rate windows.
				if counts[4] < 3*counts[0] || counts[5] < 3*counts[0] {
					t.Fatalf("burst windows %d/%d not >> base window %d", counts[4], counts[5], counts[0])
				}
			}
		})
	}
}

// TestArrivalsDeterministic: same (schedule, seed) gives the identical
// arrival stream; a different seed gives a different one.
func TestArrivalsDeterministic(t *testing.T) {
	s := Diurnal{Trough: 50, PeakRate: 200, Period: 5 * time.Second}
	a1 := Arrivals(s, 5*time.Second, 7)
	a2 := Arrivals(s, 5*time.Second, 7)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("identical seeds produced different arrival streams")
	}
	a3 := Arrivals(s, 5*time.Second, 8)
	if reflect.DeepEqual(a1, a3) {
		t.Fatal("different seeds produced identical arrival streams")
	}
}

// TestConstantInterArrivalsArePoisson: under the constant schedule the
// inter-arrival gaps have mean 1/rate and coefficient of variation ~1 —
// the memoryless signature an open-loop generator must have (a closed
// loop or a fixed-step clock would show CV near 0).
func TestConstantInterArrivalsArePoisson(t *testing.T) {
	const rate = 500.0
	arr := Arrivals(Constant{Rate: rate}, 20*time.Second, 11)
	if len(arr) < 1000 {
		t.Fatalf("only %d arrivals", len(arr))
	}
	var sum, sumSq float64
	for i := 1; i < len(arr); i++ {
		gap := (arr[i] - arr[i-1]).Seconds()
		sum += gap
		sumSq += gap * gap
	}
	n := float64(len(arr) - 1)
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("mean inter-arrival = %vs, want %vs ± 10%%", mean, 1/rate)
	}
	if cv := sd / mean; cv < 0.85 || cv > 1.15 {
		t.Fatalf("inter-arrival CV = %v, want ~1 (exponential)", cv)
	}
}

// TestZipfHotUserMass pins the user mix's skew: the hottest 1% of users
// must carry the analytically-expected share of traffic (≈85% at the
// default exponent) — the heavy tail that makes cache and quota
// behaviour under load realistic.
func TestZipfHotUserMass(t *testing.T) {
	const (
		users   = 100_000
		s       = 1.2
		samples = 200_000
	)
	ts, err := newTrafficSampler(rng.New(3), users, s, OpMix{Score: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hotCut := txn.UserID(backgroundUserBase + users/100)
	hot := 0
	for i := 0; i < samples; i++ {
		if ts.user() < hotCut {
			hot++
		}
	}
	// Analytic hot mass: H(n/100, s) / H(n, s).
	var hotH, totalH float64
	for k := 1; k <= users; k++ {
		w := math.Pow(float64(k), -s)
		totalH += w
		if k <= users/100 {
			hotH += w
		}
	}
	want := hotH / totalH
	got := float64(hot) / samples
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("hot-1%% mass = %v, analytic Zipf gives %v", got, want)
	}
	if want < 0.5 {
		t.Fatalf("analytic hot mass %v is not heavy-tailed — test parameters wrong", want)
	}
}

// TestOpMixProportions: the sampled op frequencies match the configured
// weights, and replayed transactions never draw ingest.
func TestOpMixProportions(t *testing.T) {
	mix := OpMix{Score: 0.2, Decide: 0.7, Ingest: 0.1}
	ts, err := newTrafficSampler(rng.New(5), 100, 1.2, mix, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	var counts [numOps]int
	for i := 0; i < n; i++ {
		counts[ts.op()]++
	}
	for op, want := range map[Op]float64{OpScore: 0.2, OpDecide: 0.7, OpIngest: 0.1} {
		got := float64(counts[op]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("%v frequency = %v, want %v ± 0.01", op, got, want)
		}
	}
	for i := 0; i < 10_000; i++ {
		if op := ts.scoringOp(); op == OpIngest {
			t.Fatal("scoringOp drew ingest")
		}
	}
	if _, err := newTrafficSampler(rng.New(1), 10, 1.2, OpMix{Score: -1}, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// fakeTarget flags exactly the transaction IDs in `flags`; when shedAll
// is set every request is refused with the typed shed error.
type fakeTarget struct {
	flags   map[txn.TxnID]bool
	shedAll bool
	calls   atomic.Int64
	ingests atomic.Int64
}

func (f *fakeTarget) Do(_ context.Context, op Op, t *txn.Transaction, _ decision.Scenario) (bool, error) {
	f.calls.Add(1)
	if f.shedAll {
		return false, ErrShed
	}
	if op == OpIngest {
		f.ingests.Add(1)
		return false, nil
	}
	return f.flags[t.ID], nil
}

// testManifest builds a two-scenario manifest plus its replay set: four
// ATO fraud txns, four bust-out fraud txns, and eight clean txns.
func testManifest() (*synth.Manifest, []txn.Transaction) {
	man := &synth.Manifest{Seed: 1, Users: 100, Days: 10}
	var replay []txn.Transaction
	id := txn.TxnID(0)
	addScenario := func(kind string, n int) {
		sc := synth.ScenarioManifest{Kind: kind, ID: int(id), StartDay: 1, EndDay: 9, DecisionScenario: "transfer"}
		for i := 0; i < n; i++ {
			sc.FraudTxns = append(sc.FraudTxns, id)
			sc.Users = append(sc.Users, txn.UserID(id))
			replay = append(replay, txn.Transaction{ID: id, From: 1, To: 2, Amount: 500, Fraud: true})
			id++
		}
		man.Scenarios = append(man.Scenarios, sc)
	}
	addScenario(synth.KindATO, 4)
	addScenario(synth.KindBustOut, 4)
	for i := 0; i < 8; i++ {
		replay = append(replay, txn.Transaction{ID: id, From: 3, To: 4, Amount: 50})
		id++
	}
	return man, replay
}

// TestRunGradesAgainstManifest: an end-to-end run against a fake engine
// that flags every ATO transaction and one clean transaction must report
// ATO recall 1, bust-out recall 0, and the matching precision — and the
// totals must account for every offered arrival.
func TestRunGradesAgainstManifest(t *testing.T) {
	man, replay := testManifest()
	ft := &fakeTarget{flags: map[txn.TxnID]bool{}}
	for _, id := range man.Scenarios[0].FraudTxns { // all ATO
		ft.flags[id] = true
	}
	ft.flags[replay[len(replay)-1].ID] = true // one clean false positive

	rep, err := Run(context.Background(), Config{
		Schedule: Constant{Rate: 4000},
		Duration: 250 * time.Millisecond,
		Seed:     9,
		Mix:      OpMix{Score: 0.5, Decide: 0.4, Ingest: 0.1},
		Users:    1000,
		Replay:   replay,
		Manifest: man,
	}, ft)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || int64(rep.Offered) != rep.Completed+rep.Shed+rep.Errors {
		t.Fatalf("accounting broken: offered=%d completed=%d shed=%d errors=%d",
			rep.Offered, rep.Completed, rep.Shed, rep.Errors)
	}
	if ft.calls.Load() != int64(rep.Offered) {
		t.Fatalf("target saw %d calls for %d offered", ft.calls.Load(), rep.Offered)
	}
	if rep.Replayed != int64(len(replay)) {
		t.Fatalf("replayed %d of %d labeled transactions", rep.Replayed, len(replay))
	}
	byKind := map[string]ScenarioReport{}
	for _, sr := range rep.Scenarios {
		byKind[sr.Kind] = sr
	}
	if sr := byKind[synth.KindATO]; sr.Replayed != 4 || sr.Recall != 1 {
		t.Fatalf("ATO report = %+v, want 4 replayed recall 1", sr)
	}
	if sr := byKind[synth.KindBustOut]; sr.Replayed != 4 || sr.Recall != 0 {
		t.Fatalf("bust-out report = %+v, want 4 replayed recall 0", sr)
	}
	if rep.Recall != 0.5 {
		t.Fatalf("overall recall = %v, want 0.5", rep.Recall)
	}
	// 4 true positives, 1 clean flagged: precision 0.8, FPR 1/8.
	if rep.Precision != 0.8 {
		t.Fatalf("precision = %v, want 0.8", rep.Precision)
	}
	if rep.FalsePositiveRate != 0.125 {
		t.Fatalf("FPR = %v, want 0.125", rep.FalsePositiveRate)
	}
	if rep.Latency.P50 < 0 || rep.Latency.P999 < rep.Latency.P50 {
		t.Fatalf("latency percentiles inconsistent: %+v", rep.Latency)
	}
	if rep.Ops[OpIngest.String()] == 0 {
		t.Fatal("no ingest ops despite a 10% ingest mix")
	}

	// The JSON report round-trips.
	raw, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatal("report JSON round trip not lossless")
	}
}

// TestRunCountsSheds: a fully-saturated target turns every arrival into
// a typed shed, with nothing counted completed or errored.
func TestRunCountsSheds(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Schedule: Constant{Rate: 2000},
		Duration: 100 * time.Millisecond,
		Seed:     2,
		Users:    100,
	}, &fakeTarget{shedAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if rep.Shed != int64(rep.Offered) || rep.Completed != 0 || rep.Errors != 0 {
		t.Fatalf("shed accounting: %+v", rep)
	}
}

// TestRunDeterministicWorkload: the drawn workload (ops, users, replay
// placement) is a pure function of the seed.
func TestRunDeterministicWorkload(t *testing.T) {
	man, replay := testManifest()
	cfg := Config{
		Schedule: Constant{Rate: 1000},
		Duration: time.Second,
		Seed:     4,
		Mix:      DefaultOpMix(),
		Users:    500,
		Replay:   replay,
		Manifest: man,
	}
	w1, err := buildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := buildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1, w2) {
		t.Fatal("identical configs drew different workloads")
	}
	replayed := 0
	for i := range w1 {
		if w1[i].replay {
			replayed++
			if w1[i].op == OpIngest {
				t.Fatal("a replayed transaction drew an ingest op")
			}
		}
	}
	if replayed != len(replay) {
		t.Fatalf("workload replays %d of %d labeled transactions", replayed, len(replay))
	}
}
