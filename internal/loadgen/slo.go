package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// SLO is a pinned serving-quality floor a load run must clear. The smoke
// run in CI carries one (ci/slo.json): instead of merely archiving
// LOADGEN_report.json, the gate fails the build when tail latency or
// per-scenario detection regresses past the pinned thresholds.
//
// Zero-valued ceilings are unchecked, so a gate can pin only what it
// cares about. Recall floors are keyed by scenario kind as reported in
// Report.Scenarios; the reserved key "overall" pins Report.Recall. A
// pinned scenario missing from the report entirely is itself a violation
// — silently losing a scenario from the replay must not read as passing.
type SLO struct {
	MaxP99Ms     float64            `json:"max_p99_ms"`     // client-measured p99 ceiling (0: unchecked)
	MaxP999Ms    float64            `json:"max_p999_ms"`    // p99.9 ceiling (0: unchecked)
	MaxErrorRate float64            `json:"max_error_rate"` // errors / offered ceiling (0: unchecked)
	MinRecall    map[string]float64 `json:"min_recall"`     // per-scenario floors; "overall" = total recall
}

// ParseSLO decodes an SLO document, rejecting unknown fields so a typo
// in a threshold name cannot silently disable the gate.
func ParseSLO(raw []byte) (*SLO, error) {
	var s SLO
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadgen: parse SLO: %w", err)
	}
	return &s, nil
}

// CheckSLO grades the report against the gate and returns one violation
// message per breached threshold (nil: the run passes).
func (r *Report) CheckSLO(s *SLO) []string {
	var violations []string
	if s.MaxP99Ms > 0 {
		if got := float64(r.Latency.P99) / 1000; got > s.MaxP99Ms {
			violations = append(violations, fmt.Sprintf("p99 latency %.2fms exceeds SLO %.2fms", got, s.MaxP99Ms))
		}
	}
	if s.MaxP999Ms > 0 {
		if got := float64(r.Latency.P999) / 1000; got > s.MaxP999Ms {
			violations = append(violations, fmt.Sprintf("p99.9 latency %.2fms exceeds SLO %.2fms", got, s.MaxP999Ms))
		}
	}
	if s.MaxErrorRate > 0 && r.Offered > 0 {
		if got := float64(r.Errors) / float64(r.Offered); got > s.MaxErrorRate {
			violations = append(violations, fmt.Sprintf("error rate %.4f exceeds SLO %.4f (%d errors / %d offered)",
				got, s.MaxErrorRate, r.Errors, r.Offered))
		}
	}
	if len(s.MinRecall) > 0 {
		byKind := make(map[string]float64, len(r.Scenarios))
		for _, sc := range r.Scenarios {
			byKind[sc.Kind] = sc.Recall
		}
		kinds := make([]string, 0, len(s.MinRecall))
		for kind := range s.MinRecall {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds) // deterministic violation order
		for _, kind := range kinds {
			floor := s.MinRecall[kind]
			if kind == "overall" {
				if r.Recall < floor {
					violations = append(violations, fmt.Sprintf("overall recall %.3f below SLO %.3f", r.Recall, floor))
				}
				continue
			}
			got, ok := byKind[kind]
			if !ok {
				violations = append(violations, fmt.Sprintf("scenario %q pinned by SLO but absent from the report", kind))
				continue
			}
			if got < floor {
				violations = append(violations, fmt.Sprintf("scenario %q recall %.3f below SLO %.3f", kind, got, floor))
			}
		}
	}
	return violations
}
