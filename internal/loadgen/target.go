package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"titant/internal/decision"
	"titant/internal/ms"
	"titant/internal/txn"
)

// ErrShed is the typed refusal a target reports when the server sheds a
// request (quota or overload, HTTP 429). The runner counts sheds
// separately from errors: under an overload schedule sheds are the
// admission control working, not the engine failing.
var ErrShed = errors.New("loadgen: request shed")

// ErrDegraded is the typed outcome for a request the wire tier answered
// with a degraded envelope instead of a real verdict: a router whose
// owner shard was unavailable (typed shard_unavailable / deadline
// errors, or a decide fallback action). The runner counts these apart
// from errors — during a chaos run they are the resilience plane
// degrading by design, and the count is what the chaos gate asserts on.
var ErrDegraded = errors.New("loadgen: degraded verdict")

// Target is one way to reach a scoring engine. Do performs op on t,
// reporting whether the engine flagged the transaction (a fraud verdict,
// or any decide action other than approve); flagged is meaningless for
// ingest ops. Implementations must be safe for concurrent use.
type Target interface {
	Do(ctx context.Context, op Op, t *txn.Transaction, scenario decision.Scenario) (flagged bool, err error)
}

// Engine is the in-process serving surface the driver exercises. Both
// ms.Server and ms.ShardedEngine satisfy it, so one harness measures a
// single core and a horizontally sharded one alike.
type Engine interface {
	Score(ctx context.Context, t *txn.Transaction) (ms.Verdict, error)
	Decide(ctx context.Context, t *txn.Transaction, sc decision.Scenario) (ms.Decision, error)
	Ingest(t *txn.Transaction) error
	Admit(ctx context.Context, n int) (func(), error)
}

// EngineTarget drives an in-process engine directly: the driver and the
// engine share one address space, so the harness measures the serving
// core without network or JSON overhead.
type EngineTarget struct {
	Server Engine
}

// Do satisfies Target.
func (e *EngineTarget) Do(ctx context.Context, op Op, t *txn.Transaction, sc decision.Scenario) (bool, error) {
	switch op {
	case OpScore:
		v, err := e.Server.Score(ctx, t)
		return v.Fraud, shedErr(err)
	case OpDecide:
		d, err := e.Server.Decide(ctx, t, sc)
		return err == nil && d.Action != decision.ActionApprove, shedErr(err)
	case OpIngest:
		// Ingest takes no context, so the driver admits explicitly —
		// exactly what the HTTP ingest handler does.
		release, err := e.Server.Admit(ctx, 1)
		if err != nil {
			return false, shedErr(err)
		}
		defer release()
		return false, shedErr(e.Server.Ingest(t))
	}
	return false, fmt.Errorf("loadgen: unknown op %d", op)
}

// shedErr folds the engine's admission refusals into ErrShed.
func shedErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ms.ErrRateLimited) || errors.Is(err, ms.ErrOverloaded) {
		return fmt.Errorf("%w: %v", ErrShed, err)
	}
	return err
}

// HTTPTarget drives a live server over the v1 JSON API, measuring the
// full serving stack as a client sees it.
type HTTPTarget struct {
	BaseURL string       // e.g. "http://localhost:8080"
	Caller  string       // X-Caller identity; empty omits the header
	Client  *http.Client // nil uses http.DefaultClient

	// TraceSink, when set, receives every response's X-Trace-Id with the
	// request's HTTP round-trip time. The runner wires this to the trace
	// sampler when Config.TraceSample > 0; set it before Run starts — it
	// is read concurrently afterwards.
	TraceSink func(traceID string, d time.Duration)
}

// SetTraceSink installs the trace sink (the seam Run uses, so callers
// composing their own Target wrappers can forward it).
func (h *HTTPTarget) SetTraceSink(fn func(traceID string, d time.Duration)) {
	h.TraceSink = fn
}

func (h *HTTPTarget) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// wireTxn converts a transaction to the v1 request shape (ingest adds
// the label field).
func wireTxn(t *txn.Transaction) ms.TxnRequest {
	return ms.TxnRequest{
		ID: int64(t.ID), Day: int(t.Day), Sec: t.Sec,
		From: int32(t.From), To: int32(t.To),
		Amount: t.Amount, TransCity: t.TransCity,
		DeviceRisk: t.DeviceRisk, IPRisk: t.IPRisk,
		Channel: uint8(t.Channel),
	}
}

// Do satisfies Target.
func (h *HTTPTarget) Do(ctx context.Context, op Op, t *txn.Transaction, sc decision.Scenario) (bool, error) {
	var path string
	var body interface{}
	switch op {
	case OpScore:
		path, body = "/v1/score", wireTxn(t)
	case OpDecide:
		path = "/v1/decide"
		body = struct {
			ms.TxnRequest
			Scenario string `json:"scenario,omitempty"`
		}{wireTxn(t), sc.String()}
	case OpIngest:
		path = "/v1/ingest"
		body = struct {
			ms.TxnRequest
			Fraud bool `json:"fraud"`
		}{wireTxn(t), t.Fraud}
	default:
		return false, fmt.Errorf("loadgen: unknown op %d", op)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if h.Caller != "" {
		req.Header.Set("X-Caller", h.Caller)
	}
	rtStart := time.Now()
	resp, err := h.client().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if h.TraceSink != nil {
		h.TraceSink(resp.Header.Get("X-Trace-Id"), time.Since(rtStart))
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return false, ErrShed
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if json.Unmarshal(msg, &env) == nil &&
			(env.Error.Code == ms.CodeShardUnavailable || env.Error.Code == ms.CodeDeadlineExceeded) {
			return false, fmt.Errorf("%w: %s: %s", ErrDegraded, path, env.Error.Code)
		}
		return false, fmt.Errorf("loadgen: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if op == OpIngest {
		io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	var out struct {
		Fraud    bool   `json:"fraud"`
		Action   string `json:"action"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, fmt.Errorf("loadgen: %s: decode response: %w", path, err)
	}
	if out.Degraded {
		// A fallback action is a placeholder, not a verdict; grading it
		// as flagged would hide the outage from the recall numbers.
		return false, fmt.Errorf("%w: %s: fallback action %q", ErrDegraded, path, out.Action)
	}
	if op == OpDecide {
		return out.Action != "" && out.Action != "approve", nil
	}
	return out.Fraud, nil
}
