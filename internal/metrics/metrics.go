// Package metrics implements the evaluation metrics of the paper's
// Section 5: F1 score (Table 1, Table 2, Figures 11-12) and recall at the
// top k% most-suspicious transactions (Figure 9, k=1%), plus the
// supporting machinery a production fraud team needs around them —
// confusion matrices, AUC, and BestF1 threshold selection. BestF1 is what
// the T+1 pipeline (internal/core) uses to freeze the decision threshold
// on the validation days: fraud labels arrive days late, so the serving
// threshold cannot be tuned online and must be fixed at training time.
// internal/exp drives these metrics to regenerate every number in the
// paper's evaluation.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse computes the confusion matrix of predictions at a threshold:
// score >= threshold predicts fraud.
func Confuse(scores []float64, labels []bool, threshold float64) Confusion {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores vs %d labels", len(scores), len(labels)))
	}
	var c Confusion
	for i, s := range scores {
		pred := s >= threshold
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision is TP/(TP+FP); 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d p=%.4f r=%.4f f1=%.4f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// F1At is shorthand for Confuse(...).F1().
func F1At(scores []float64, labels []bool, threshold float64) float64 {
	return Confuse(scores, labels, threshold).F1()
}

// BestF1 scans all meaningful thresholds (the distinct scores) and returns
// the maximum achievable F1 and the threshold achieving it. Labels arrive
// too late to tune online, so the pipeline calls this on a validation slice
// and freezes the threshold for the test day (see DESIGN.md §4).
func BestF1(scores []float64, labels []bool) (bestF1, bestThreshold float64) {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	if n == 0 {
		return 0, 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	totalPos := 0
	for _, l := range labels {
		if l {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0, math.Inf(1)
	}
	// Sweep the sorted scores: predicting the top i+1 as positive yields
	// tp=cumulative positives. F1 = 2tp / (predicted + totalPos).
	tp := 0
	bestF1, bestThreshold = 0, math.Inf(1)
	for i := 0; i < n; i++ {
		if labels[idx[i]] {
			tp++
		}
		// Only evaluate at boundaries between distinct scores, otherwise the
		// "threshold" would split ties inconsistently.
		if i+1 < n && scores[idx[i+1]] == scores[idx[i]] {
			continue
		}
		f1 := 2 * float64(tp) / float64(i+1+totalPos)
		if f1 > bestF1 {
			bestF1 = f1
			bestThreshold = scores[idx[i]]
		}
	}
	return bestF1, bestThreshold
}

// RecallAtTop returns the fraction of all fraud captured when flagging the
// top `fraction` (e.g. 0.01 for 1%) highest-scored transactions - the
// paper's rec@top1% metric of Figure 9. Ties at the cut are broken by
// original order after a stable sort on descending score.
func RecallAtTop(scores []float64, labels []bool, fraction float64) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	if n == 0 || fraction <= 0 {
		return 0
	}
	k := int(math.Ceil(fraction * float64(n)))
	if k > n {
		k = n
	}
	totalPos := 0
	for _, l := range labels {
		if l {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	tp := 0
	for _, i := range idx[:k] {
		if labels[i] {
			tp++
		}
	}
	return float64(tp) / float64(totalPos)
}

// AUC computes the area under the ROC curve via the rank-sum (Mann-Whitney)
// formulation, with tie correction. Returns 0.5 when either class is empty.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Assign average ranks to ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var pos int
	var sumPosRanks float64
	for i, l := range labels {
		if l {
			pos++
			sumPosRanks += ranks[i]
		}
	}
	neg := n - pos
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (sumPosRanks - float64(pos)*(float64(pos)+1)/2) / (float64(pos) * float64(neg))
}

// PRPoint is one point on a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve returns the precision-recall curve evaluated at every distinct
// score, ordered by descending threshold (increasing recall).
func PRCurve(scores []float64, labels []bool) []PRPoint {
	n := len(scores)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	totalPos := 0
	for _, l := range labels {
		if l {
			totalPos++
		}
	}
	var curve []PRPoint
	tp := 0
	for i := 0; i < n; i++ {
		if labels[idx[i]] {
			tp++
		}
		if i+1 < n && scores[idx[i+1]] == scores[idx[i]] {
			continue
		}
		p := float64(tp) / float64(i+1)
		r := 0.0
		if totalPos > 0 {
			r = float64(tp) / float64(totalPos)
		}
		curve = append(curve, PRPoint{Threshold: scores[idx[i]], Precision: p, Recall: r})
	}
	return curve
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
