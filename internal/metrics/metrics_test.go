package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"titant/internal/rng"
)

func TestConfuseBasics(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, false, true, false}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 || c.Accuracy() != 0.5 {
		t.Fatalf("derived metrics wrong: %s", c)
	}
}

func TestConfuseEmptyEdges(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("zero confusion must yield zero metrics")
	}
}

func TestConfusePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Confuse([]float64{1}, []bool{true, false}, 0.5)
}

func TestPerfectClassifier(t *testing.T) {
	scores := []float64{0.99, 0.98, 0.01, 0.02}
	labels := []bool{true, true, false, false}
	if f1 := F1At(scores, labels, 0.5); f1 != 1 {
		t.Errorf("perfect F1 = %v", f1)
	}
	if auc := AUC(scores, labels); auc != 1 {
		t.Errorf("perfect AUC = %v", auc)
	}
	if r := RecallAtTop(scores, labels, 0.5); r != 1 {
		t.Errorf("perfect rec@top50%% = %v", r)
	}
}

func TestInvertedClassifier(t *testing.T) {
	scores := []float64{0.01, 0.02, 0.99, 0.98}
	labels := []bool{true, true, false, false}
	if auc := AUC(scores, labels); auc != 0 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	r := rng.New(17)
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Bool(0.3)
	}
	if auc := AUC(scores, labels); math.Abs(auc-0.5) > 0.02 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 via tie correction.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if auc := AUC(scores, labels); auc != 0.5 {
		t.Errorf("all-ties AUC = %v, want 0.5", auc)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if auc := AUC([]float64{1, 2}, []bool{true, true}); auc != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", auc)
	}
}

func TestBestF1FindsOptimum(t *testing.T) {
	scores := []float64{0.9, 0.7, 0.6, 0.4, 0.2}
	labels := []bool{true, true, false, true, false}
	f1, th := BestF1(scores, labels)
	// Predicting top-4 positive: tp=3, fp=1, fn=0 -> p=0.75 r=1 f1=6/7.
	want := 6.0 / 7.0
	if math.Abs(f1-want) > 1e-12 {
		t.Errorf("BestF1 = %v, want %v", f1, want)
	}
	if got := F1At(scores, labels, th); math.Abs(got-f1) > 1e-12 {
		t.Errorf("threshold %v reproduces F1 %v, want %v", th, got, f1)
	}
}

func TestBestF1NoPositives(t *testing.T) {
	f1, _ := BestF1([]float64{0.1, 0.9}, []bool{false, false})
	if f1 != 0 {
		t.Errorf("BestF1 with no positives = %v", f1)
	}
}

func TestBestF1Empty(t *testing.T) {
	f1, _ := BestF1(nil, nil)
	if f1 != 0 {
		t.Errorf("BestF1(nil) = %v", f1)
	}
}

// Property: BestF1 dominates F1 at any particular threshold.
func TestBestF1DominatesProperty(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint32, th float64) bool {
		rr := r.Split(uint64(seed))
		n := 5 + rr.Intn(50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rr.Float64()
			labels[i] = rr.Bool(0.3)
		}
		best, _ := BestF1(scores, labels)
		return best+1e-12 >= F1At(scores, labels, math.Mod(math.Abs(th), 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecallAtTop(t *testing.T) {
	// 10 txns, 2 frauds, both in the top 10% (k=1)? k=ceil(0.1*10)=1.
	scores := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	labels := []bool{true, false, true, false, false, false, false, false, false, false}
	if r := RecallAtTop(scores, labels, 0.1); r != 0.5 {
		t.Errorf("rec@top10%% = %v, want 0.5 (1 of 2 frauds in top-1)", r)
	}
	if r := RecallAtTop(scores, labels, 0.3); r != 1 {
		t.Errorf("rec@top30%% = %v, want 1", r)
	}
	if r := RecallAtTop(scores, labels, 0); r != 0 {
		t.Errorf("rec@top0%% = %v, want 0", r)
	}
	if r := RecallAtTop(scores, labels, 2.0); r != 1 {
		t.Errorf("rec@top200%% = %v, want 1 (clamped)", r)
	}
}

func TestRecallAtTopNoFraud(t *testing.T) {
	if r := RecallAtTop([]float64{1, 2}, []bool{false, false}, 0.5); r != 0 {
		t.Errorf("rec with no fraud = %v", r)
	}
}

// Property: recall@top is monotone non-decreasing in the fraction.
func TestRecallMonotoneProperty(t *testing.T) {
	r := rng.New(99)
	f := func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		n := 10 + rr.Intn(100)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rr.Float64()
			labels[i] = rr.Bool(0.2)
		}
		prev := 0.0
		for _, frac := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0} {
			cur := RecallAtTop(scores, labels, frac)
			if cur+1e-12 < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPRCurveShape(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	curve := PRCurve(scores, labels)
	if len(curve) != 4 {
		t.Fatalf("curve has %d points, want 4", len(curve))
	}
	// Recall must be non-decreasing along the curve.
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Errorf("recall decreased at point %d", i)
		}
	}
	if curve[len(curve)-1].Recall != 1 {
		t.Errorf("final recall = %v, want 1", curve[len(curve)-1].Recall)
	}
	if PRCurve(nil, nil) != nil {
		t.Error("PRCurve(nil) != nil")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
}

func BenchmarkBestF1(b *testing.B) {
	r := rng.New(1)
	n := 10000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Bool(0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestF1(scores, labels)
	}
}
