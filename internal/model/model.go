// Package model defines the common classifier contract shared by the
// paper's five detection methods (Isolation Forest, ID3, C5.0, Logistic
// Regression, GBDT) and helpers to score feature matrices.
//
// Every concrete model is self-contained: models that require discretised
// inputs embed their own fitted discretiser, so a trained model always
// scores raw feature vectors. That is what lets the Model Server load one
// opaque bundle and serve any detector.
package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"titant/internal/feature"
)

// Classifier scores a raw feature vector; higher means more suspicious.
// Scores are comparable within one model (for ranking and thresholding) but
// not across models.
type Classifier interface {
	// Score returns the fraud suspicion of one feature vector.
	Score(x []float64) float64
	// NumFeatures returns the expected input width.
	NumFeatures() int
}

// BatchScorer is implemented by detectors with a vectorised batch path:
// ScoreBatch scores every row of m into dst (len(dst) == m.Rows), producing
// bitwise-identical results to calling Score row by row. Implementations
// may assume the caller has already validated m.Cols against NumFeatures
// and len(dst) against m.Rows — ScoreMatrix and ScoreMatrixInto do.
type BatchScorer interface {
	ScoreBatch(dst []float64, m *feature.Matrix)
}

// ErrWidth reports a feature matrix whose column count disagrees with the
// classifier's trained input width. It is a data/configuration error (a
// stale or corrupt model against a differently-shaped feature pipeline),
// so scoring surfaces it as a value instead of panicking.
var ErrWidth = errors.New("model: feature width mismatch")

// ScoreMatrix scores every row of m, taking the detector's batch path when
// it implements BatchScorer and falling back to a row loop otherwise.
func ScoreMatrix(c Classifier, m *feature.Matrix) ([]float64, error) {
	out := make([]float64, m.Rows)
	if err := ScoreMatrixInto(out, c, m); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreMatrixInto scores every row of m into dst, which must have exactly
// m.Rows slots. Like ScoreMatrix it dispatches to the batch path when the
// detector provides one.
func ScoreMatrixInto(dst []float64, c Classifier, m *feature.Matrix) error {
	if m.Cols != c.NumFeatures() {
		return fmt.Errorf("%w: matrix has %d features, model wants %d", ErrWidth, m.Cols, c.NumFeatures())
	}
	if len(dst) != m.Rows {
		return fmt.Errorf("%w: dst has %d slots, matrix %d rows", ErrWidth, len(dst), m.Rows)
	}
	if bs, ok := c.(BatchScorer); ok {
		bs.ScoreBatch(dst, m)
		return nil
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = c.Score(m.Row(i))
	}
	return nil
}

// Encode serialises a model with gob. Concrete model types must be
// registered with gob.Register (each package does so in init).
func Encode(c Classifier) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	// Encode through an interface wrapper so Decode can recover the
	// concrete type.
	w := wrapper{C: c}
	if err := enc.Encode(&w); err != nil {
		return nil, fmt.Errorf("model: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserialises a model encoded by Encode.
func Decode(data []byte) (Classifier, error) {
	var w wrapper
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	if w.C == nil {
		return nil, fmt.Errorf("model: decoded nil classifier")
	}
	return w.C, nil
}

type wrapper struct {
	C Classifier
}

// Sigmoid is the logistic function, shared by LR, GBDT calibration and
// Structure2Vec.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + exp(-z))
	}
	e := exp(z)
	return e / (1 + e)
}

// exp is a clamped exponential that avoids overflow for |z| > 700.
func exp(z float64) float64 {
	if z > 700 {
		z = 700
	} else if z < -700 {
		z = -700
	}
	return math.Exp(z)
}
