// Package model defines the common classifier contract shared by the
// paper's five detection methods (Isolation Forest, ID3, C5.0, Logistic
// Regression, GBDT) and helpers to score feature matrices.
//
// Every concrete model is self-contained: models that require discretised
// inputs embed their own fitted discretiser, so a trained model always
// scores raw feature vectors. That is what lets the Model Server load one
// opaque bundle and serve any detector.
package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"titant/internal/feature"
)

// Classifier scores a raw feature vector; higher means more suspicious.
// Scores are comparable within one model (for ranking and thresholding) but
// not across models.
type Classifier interface {
	// Score returns the fraud suspicion of one feature vector.
	Score(x []float64) float64
	// NumFeatures returns the expected input width.
	NumFeatures() int
}

// ScoreMatrix scores every row of m.
func ScoreMatrix(c Classifier, m *feature.Matrix) []float64 {
	if m.Cols != c.NumFeatures() {
		panic(fmt.Sprintf("model: matrix has %d features, model wants %d", m.Cols, c.NumFeatures()))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = c.Score(m.Row(i))
	}
	return out
}

// Encode serialises a model with gob. Concrete model types must be
// registered with gob.Register (each package does so in init).
func Encode(c Classifier) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	// Encode through an interface wrapper so Decode can recover the
	// concrete type.
	w := wrapper{C: c}
	if err := enc.Encode(&w); err != nil {
		return nil, fmt.Errorf("model: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserialises a model encoded by Encode.
func Decode(data []byte) (Classifier, error) {
	var w wrapper
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	if w.C == nil {
		return nil, fmt.Errorf("model: decoded nil classifier")
	}
	return w.C, nil
}

type wrapper struct {
	C Classifier
}

// Sigmoid is the logistic function, shared by LR, GBDT calibration and
// Structure2Vec.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + exp(-z))
	}
	e := exp(z)
	return e / (1 + e)
}

// exp is a clamped exponential that avoids overflow for |z| > 700.
func exp(z float64) float64 {
	if z > 700 {
		z = 700
	} else if z < -700 {
		z = -700
	}
	return math.Exp(z)
}
