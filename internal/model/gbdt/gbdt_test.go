package gbdt

import (
	"fmt"
	"math"
	"testing"

	"titant/internal/feature"
	"titant/internal/metrics"
	"titant/internal/model"
	"titant/internal/rng"
)

// mustScores is a test shim over the error-returning model.ScoreMatrix.
func mustScores(c model.Classifier, m *feature.Matrix) []float64 {
	s, err := model.ScoreMatrix(c, m)
	if err != nil {
		panic(err)
	}
	return s
}

// interactionData labels rows by a rule with feature interactions plus
// noise: positive iff (x0>0.5 AND x1<0.3) OR (x2>0.8 AND x3>0.6).
func interactionData(n int, seed uint64) (*feature.Matrix, []bool) {
	r := rng.New(seed)
	m := feature.NewMatrix(n, 6)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, r.Float64())
		}
		y := (m.At(i, 0) > 0.5 && m.At(i, 1) < 0.3) || (m.At(i, 2) > 0.8 && m.At(i, 3) > 0.6)
		if r.Bool(0.03) {
			y = !y
		}
		labels[i] = y
	}
	return m, labels
}

func smallConfig() Config {
	c := DefaultConfig()
	c.Trees = 80
	return c
}

func TestLearnsInteractions(t *testing.T) {
	m, labels := interactionData(4000, 1)
	mt, lt := interactionData(1500, 2)
	cfg := smallConfig()
	cfg.Trees = 200
	mo := Train(m, labels, cfg)
	scores := mustScores(mo, mt)
	if auc := metrics.AUC(scores, lt); auc < 0.95 {
		t.Errorf("held-out AUC %.3f < 0.95", auc)
	}
}

func TestBeatsLinearOnInteractions(t *testing.T) {
	// The central Table 1 mechanism: GBDT must exploit interactions that a
	// single split cannot. Compare against a depth-1 (stump) ensemble.
	m, labels := interactionData(4000, 3)
	mt, lt := interactionData(1500, 4)
	deep := smallConfig()
	stump := smallConfig()
	stump.Depth = 1
	aucDeep := metrics.AUC(mustScores(Train(m, labels, deep), mt), lt)
	aucStump := metrics.AUC(mustScores(Train(m, labels, stump), mt), lt)
	if aucDeep <= aucStump {
		t.Errorf("depth-3 AUC %.3f <= stump AUC %.3f", aucDeep, aucStump)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	m, labels := interactionData(2000, 5)
	mse := func(trees int) float64 {
		cfg := smallConfig()
		cfg.Trees = trees
		mo := Train(m, labels, cfg)
		scores := mo.ScoreBinned(m)
		var s float64
		for i, sc := range scores {
			y := 0.0
			if labels[i] {
				y = 1
			}
			s += (sc - y) * (sc - y)
		}
		return s / float64(len(scores))
	}
	l10, l40, l160 := mse(10), mse(40), mse(160)
	if !(l160 < l40 && l40 < l10) {
		t.Errorf("training MSE not decreasing: %v %v %v", l10, l40, l160)
	}
}

func TestScoreMatchesScoreBinned(t *testing.T) {
	m, labels := interactionData(800, 6)
	mo := Train(m, labels, smallConfig())
	batch := mo.ScoreBinned(m)
	for i := 0; i < m.Rows; i += 17 {
		if one := mo.Score(m.Row(i)); math.Abs(one-batch[i]) > 1e-12 {
			t.Fatalf("row %d: Score %v vs ScoreBinned %v", i, one, batch[i])
		}
	}
}

func TestBasePredictionIsLabelMean(t *testing.T) {
	r := rng.New(7)
	m := feature.NewMatrix(1000, 2)
	labels := make([]bool, 1000)
	pos := 0
	for i := range labels {
		m.Set(i, 0, r.Float64())
		m.Set(i, 1, r.Float64())
		labels[i] = r.Bool(0.1)
		if labels[i] {
			pos++
		}
	}
	mo := Train(m, labels, smallConfig())
	want := float64(pos) / 1000
	if math.Abs(mo.Base-want) > 1e-12 {
		t.Errorf("base %v, want %v", mo.Base, want)
	}
}

func TestDeterminism(t *testing.T) {
	m, labels := interactionData(1000, 8)
	a := Train(m, labels, smallConfig())
	b := Train(m, labels, smallConfig())
	for i := 0; i < m.Rows; i += 19 {
		if a.Score(m.Row(i)) != b.Score(m.Row(i)) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestSeedChangesModel(t *testing.T) {
	m, labels := interactionData(1000, 9)
	cfg2 := smallConfig()
	cfg2.Seed = 99
	a := Train(m, labels, smallConfig())
	b := Train(m, labels, cfg2)
	same := true
	for i := 0; i < m.Rows; i += 19 {
		if a.Score(m.Row(i)) != b.Score(m.Row(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical models")
	}
}

func TestEncodeDecode(t *testing.T) {
	m, labels := interactionData(600, 10)
	mo := Train(m, labels, smallConfig())
	data, err := model.Encode(mo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows; i += 23 {
		if c.Score(m.Row(i)) != mo.Score(m.Row(i)) {
			t.Fatal("decoded scores differ")
		}
	}
}

func TestNumTrees(t *testing.T) {
	m, labels := interactionData(500, 11)
	cfg := smallConfig()
	cfg.Trees = 17
	mo := Train(m, labels, cfg)
	if mo.NumTrees() != 17 {
		t.Errorf("NumTrees = %d, want 17", mo.NumTrees())
	}
}

func TestPanics(t *testing.T) {
	m, labels := interactionData(100, 12)
	for name, fn := range map[string]func(){
		"mismatch":  func() { Train(m, labels[:50], smallConfig()) },
		"zeroTrees": func() { Train(m, labels, Config{Trees: 0, Depth: 3, Bins: 32, Subsample: 0.5, ColSample: 0.5}) },
		"badSub":    func() { Train(m, labels, Config{Trees: 1, Depth: 3, Bins: 32, Subsample: 0, ColSample: 0.5}) },
		"width": func() {
			mo := Train(m, labels, smallConfig())
			mo.Score([]float64{1})
		},
	} {
		func() {
			defer func() { _ = recover() }()
			fn()
			t.Errorf("%s did not panic", name)
		}()
	}
}

func TestImbalancedRanking(t *testing.T) {
	// 2% positives with a weak joint signal: ranking must still place
	// positives ahead of negatives on average (AUC well above 0.5).
	r := rng.New(13)
	n := 6000
	m := feature.NewMatrix(n, 5)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, r.Float64())
		}
		p := 0.004
		if m.At(i, 0) > 0.7 && m.At(i, 1) > 0.5 {
			p = 0.12
		}
		labels[i] = r.Bool(p)
	}
	mo := Train(m, labels, smallConfig())
	if auc := metrics.AUC(mo.ScoreBinned(m), labels); auc < 0.7 {
		t.Errorf("imbalanced AUC %.3f < 0.7", auc)
	}
}

func BenchmarkTrain400(b *testing.B) {
	m, labels := interactionData(5000, 1)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(m, labels, cfg)
	}
}

// TestScoreBatchBitwiseIdentical pins the compiled predictor to the scalar
// walk: identical bits, not just close, across tree shapes (early leaves,
// non-default depths) and batch sizes on both sides of the worker-pool
// threshold.
func TestScoreBatchBitwiseIdentical(t *testing.T) {
	train, labels := interactionData(3000, 14)
	cases := map[string]Config{
		"depth3":      smallConfig(),
		"earlyLeaves": func() Config { c := smallConfig(); c.MinLeaf = 400; return c }(),
		"depth2":      func() Config { c := smallConfig(); c.Depth = 2; return c }(),
		"depth5":      func() Config { c := smallConfig(); c.Depth = 5; return c }(),
	}
	for name, cfg := range cases {
		mo := Train(train, labels, cfg)
		for _, rows := range []int{1, 7, 300, 1000} {
			m, _ := interactionData(rows, uint64(rows)+20)
			got := make([]float64, rows)
			mo.ScoreBatch(got, m)
			for i := 0; i < rows; i++ {
				if want := mo.Score(m.Row(i)); got[i] != want {
					t.Fatalf("%s rows=%d row %d: batch %v != scalar %v", name, rows, i, got[i], want)
				}
			}
		}
		if mo.compiledSoA == nil {
			t.Errorf("%s: trees did not compile", name)
		}
	}
}

// A model whose trees are not the complete arrays the trainer produces
// must fall back to the scalar walk rather than compile garbage.
func TestScoreBatchFallbackWithoutCompile(t *testing.T) {
	train, labels := interactionData(800, 15)
	mo := Train(train, labels, smallConfig())
	mo.Depth = 4 // disagrees with the depth-3 node arrays: not compilable
	m, _ := interactionData(64, 16)
	got := make([]float64, m.Rows)
	mo.ScoreBatch(got, m)
	if mo.compiledSoA != nil {
		t.Fatal("inconsistent model compiled anyway")
	}
	for i := 0; i < m.Rows; i++ {
		if want := mo.Score(m.Row(i)); got[i] != want {
			t.Fatalf("fallback row %d: %v != %v", i, got[i], want)
		}
	}
}

// BenchmarkScoreBatch compares the compiled SoA batch path against the
// per-row scalar walk at the paper's production shape (400 trees, depth
// 3). The compiled path must hold a wide margin (the serving acceptance
// bar is 3x per row at 256+ rows).
func BenchmarkScoreBatch(b *testing.B) {
	train, labels := interactionData(4000, 1)
	mo := Train(train, labels, DefaultConfig())
	for _, rows := range []int{256, 4096} {
		m, _ := interactionData(rows, 2)
		dst := make([]float64, rows)
		b.Run(fmt.Sprintf("compiled-%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mo.ScoreBatch(dst, m)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
		b.Run(fmt.Sprintf("scalar-%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					dst[r] = mo.Score(m.Row(r))
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
	}
}
