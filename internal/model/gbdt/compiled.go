package gbdt

import (
	"runtime"
	"sync"
	"sync/atomic"

	"titant/internal/feature"
)

// compiled is the batch-inference form of a trained ensemble: every tree
// flattened into one contiguous structure-of-arrays block, padded to a
// perfect tree of the model's depth so traversal needs no leaf test.
//
// Layout per tree t (depth D, so 2^D-1 interior nodes and 2^D leaves):
//
//	cols[t*interior : (t+1)*interior]  split feature per heap-ordered node
//	thrs[t*interior : (t+1)*interior]  go left when bin <= thr
//	leaf[t*leaves   : (t+1)*leaves]    output per bottom-level leaf
//
// A tree that stopped growing early (a leaf above the bottom level) is
// padded with always-left dummy splits (thr = 255: every uint8 bin
// satisfies bin <= 255) and its value replicated into the reachable
// bottom-level leaves, so every traversal runs exactly D comparisons and
// lands on a leaf holding the same value the pointerless scalar walk
// returns. Summation stays in tree order, which keeps batch scores
// bitwise identical to the scalar path.
type compiled struct {
	depth    int
	interior int // 2^depth - 1 split slots per tree
	leaves   int // 2^depth leaf slots per tree
	trees    int
	cols     []int32
	thrs     []uint8
	leaf     []float64
}

// parallelRowThreshold is the batch size at and above which predictAll
// fans rows out over a worker pool; smaller batches run on the caller's
// goroutine.
const parallelRowThreshold = 256

// rowBlock is the number of rows scored per pass over the tree blocks —
// the unit workers claim in parallel mode and the serial path's chunk. At
// 256 rows the chunk's bins (256 * cols bytes) and partial sums (2KB) stay
// L1-resident while a tree block streams over them.
const rowBlock = 256

// treeBlock is the number of trees scored per pass over a row chunk. A
// block's SoA slices (treeBlock * (interior + leaves) entries) stay
// resident in L1/L2 while the block streams over its rows.
const treeBlock = 32

// compile flattens the model's trees. It returns nil when any tree is not
// the complete array newTreeBuilder produces (e.g. a hand-built or corrupt
// model); callers fall back to the scalar walk.
func compile(mo *Model) *compiled {
	if mo.Depth < 1 || mo.Depth > 16 {
		return nil
	}
	interior := 1<<mo.Depth - 1
	leaves := 1 << mo.Depth
	want := 2*leaves - 1
	for i := range mo.TreesArr {
		if len(mo.TreesArr[i].Nodes) != want {
			return nil
		}
	}
	c := &compiled{
		depth:    mo.Depth,
		interior: interior,
		leaves:   leaves,
		trees:    len(mo.TreesArr),
		cols:     make([]int32, len(mo.TreesArr)*interior),
		thrs:     make([]uint8, len(mo.TreesArr)*interior),
		leaf:     make([]float64, len(mo.TreesArr)*leaves),
	}
	for t := range mo.TreesArr {
		c.fill(&mo.TreesArr[t], t, 0, 0, false)
	}
	return c
}

// fill copies node idx of tree t into the perfect-tree block, propagating
// an early leaf's value down to the bottom level behind dummy splits.
func (c *compiled) fill(tr *Tree, t, idx int, forced float64, isForced bool) {
	if idx >= c.interior {
		v := forced
		if !isForced {
			v = tr.Nodes[idx].Value
		}
		c.leaf[t*c.leaves+idx-c.interior] = v
		return
	}
	n := &tr.Nodes[idx]
	at := t*c.interior + idx
	if isForced || n.Col < 0 {
		if !isForced {
			forced, isForced = n.Value, true
		}
		// Dummy split: bin <= 255 always holds, so rows go left; the right
		// subtree is unreachable but filled for determinism.
		c.cols[at] = 0
		c.thrs[at] = 255
	} else {
		c.cols[at] = n.Col
		c.thrs[at] = n.Thr
	}
	c.fill(tr, t, 2*idx+1, forced, isForced)
	c.fill(tr, t, 2*idx+2, forced, isForced)
}

// predict scores rows [lo, hi) of the pre-binned batch into dst, adding
// every tree's output to the base prediction in tree order.
func (c *compiled) predict(dst []float64, binned *feature.Binned, base float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = base
	}
	// Tree-blocked: each block's SoA slab stays hot while it streams over
	// the row range; blocks run in ascending order so each row accumulates
	// trees 0..T-1 exactly as the scalar path does.
	for t0 := 0; t0 < c.trees; t0 += treeBlock {
		t1 := t0 + treeBlock
		if t1 > c.trees {
			t1 = c.trees
		}
		if c.depth == 3 {
			c.blockDepth3(dst, binned, t0, t1, lo, hi)
		} else {
			c.blockGeneric(dst, binned, t0, t1, lo, hi)
		}
	}
}

// blockDepth3 is the unrolled traversal for the paper's depth-3 trees:
// three comparisons, no loop, no leaf test. Trees run in the outer loop so
// each tree's seven node descriptors are hoisted into locals while its
// rows stream sequentially; every row still accumulates trees in ascending
// order, so the sum stays bitwise equal to the scalar walk. Heap indices
// after branches b0 b1 b2 are 1+b0, 3+2*b0+b1 and leaf slot 4*b0+2*b1+b2.
func (c *compiled) blockDepth3(dst []float64, binned *feature.Binned, t0, t1, lo, hi int) {
	data, stride := binned.Data, binned.Cols
	for t := t0; t < t1; t++ {
		nb := t * 7
		c0, c1, c2 := int(c.cols[nb]), int(c.cols[nb+1]), int(c.cols[nb+2])
		c3, c4, c5, c6 := int(c.cols[nb+3]), int(c.cols[nb+4]), int(c.cols[nb+5]), int(c.cols[nb+6])
		h0, h1, h2 := c.thrs[nb], c.thrs[nb+1], c.thrs[nb+2]
		h3, h4, h5, h6 := c.thrs[nb+3], c.thrs[nb+4], c.thrs[nb+5], c.thrs[nb+6]
		lb := t * 8
		leaf := c.leaf[lb : lb+8 : lb+8]
		cl := [4]int{c3, c4, c5, c6}
		hl := [4]uint8{h3, h4, h5, h6}
		for i := lo; i < hi; i++ {
			bins := data[i*stride : i*stride+stride : i*stride+stride]
			b0 := 0
			col, thr := c1, h1
			if bins[c0] > h0 {
				b0 = 1
				col, thr = c2, h2
			}
			b1 := 0
			if bins[col] > thr {
				b1 = 1
			}
			p := 2*b0 + b1
			b2 := 0
			if bins[cl[p]] > hl[p] {
				b2 = 1
			}
			dst[i] += leaf[2*p+b2]
		}
	}
}

// blockGeneric walks depth comparisons per tree for non-default depths,
// with the same tree-outer loop order as blockDepth3.
func (c *compiled) blockGeneric(dst []float64, binned *feature.Binned, t0, t1, lo, hi int) {
	data, stride := binned.Data, binned.Cols
	for t := t0; t < t1; t++ {
		nb := t * c.interior
		cols := c.cols[nb : nb+c.interior : nb+c.interior]
		thrs := c.thrs[nb : nb+c.interior : nb+c.interior]
		lb := t * c.leaves
		leaf := c.leaf[lb : lb+c.leaves : lb+c.leaves]
		for i := lo; i < hi; i++ {
			bins := data[i*stride : i*stride+stride : i*stride+stride]
			idx := 0
			for d := 0; d < c.depth; d++ {
				if bins[cols[idx]] > thrs[idx] {
					idx = 2*idx + 2
				} else {
					idx = 2*idx + 1
				}
			}
			dst[i] += leaf[idx-c.interior]
		}
	}
}

// predictAll scores the whole binned batch into dst, fanning row blocks
// out over a worker pool when the batch is large enough to pay for it.
// Rows are disjoint across workers and each row sums its trees in order,
// so the result is deterministic and bitwise equal to the scalar path
// regardless of scheduling.
func (c *compiled) predictAll(dst []float64, binned *feature.Binned, base float64) {
	rows := binned.Rows
	workers := runtime.GOMAXPROCS(0)
	if rows < parallelRowThreshold || workers < 2 {
		for lo := 0; lo < rows; lo += rowBlock {
			hi := lo + rowBlock
			if hi > rows {
				hi = rows
			}
			c.predict(dst, binned, base, lo, hi)
		}
		return
	}
	if max := (rows + rowBlock - 1) / rowBlock; workers > max {
		workers = max
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(rowBlock)) - rowBlock
				if lo >= rows {
					return
				}
				hi := lo + rowBlock
				if hi > rows {
					hi = rows
				}
				c.predict(dst, binned, base, lo, hi)
			}
		}()
	}
	wg.Wait()
}
