// Package gbdt implements the paper's Gradient Boosting Decision Tree
// detector: 400 regression trees of depth 3 with root-mean-square error as
// the objective and 0.4 row/column subsampling to prevent overfitting
// (Section 5.1). Trees are grown level-wise on histogram-binned features,
// the same technique production systems use to make boosting tractable at
// scale.
package gbdt

import (
	"encoding/gob"
	"fmt"
	"sync"

	"titant/internal/feature"
	"titant/internal/model"
	"titant/internal/rng"
)

func init() { gob.Register(&Model{}) }

// Config holds GBDT hyperparameters.
type Config struct {
	Trees        int     // boosting rounds (paper: 400)
	Depth        int     // tree depth (paper: 3)
	LearningRate float64 // shrinkage
	Subsample    float64 // row subsample per tree (paper: 0.4)
	ColSample    float64 // feature subsample per tree (paper: 0.4)
	Bins         int     // histogram bins
	MinLeaf      int     // minimum rows per leaf
	Lambda       float64 // L2 on leaf values
	Seed         uint64
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Trees: 400, Depth: 3, LearningRate: 0.1,
		Subsample: 0.4, ColSample: 0.4,
		Bins: 64, MinLeaf: 5, Lambda: 1, Seed: 1,
	}
}

// TreeNode is a node of one regression tree, stored in a flat array:
// children of node i are 2i+1 and 2i+2. Exported for gob.
type TreeNode struct {
	Col   int32   // split feature; -1 marks a leaf
	Thr   uint8   // go left when bin <= Thr
	Value float64 // leaf output
}

// Tree is one regression tree as a complete array of depth Depth.
type Tree struct {
	Nodes []TreeNode
}

// Model is a trained gradient-boosted ensemble with its embedded binner.
type Model struct {
	TreesArr []Tree
	Disc     *feature.Discretizer
	Base     float64 // initial prediction (label mean)
	Features int
	Depth    int

	// The compiled predictor is built lazily from the exported fields on
	// the first batch call, so gob-decoded models (bundles) compile too.
	compileOnce sync.Once
	compiledSoA *compiled // nil when the trees cannot be compiled
}

var (
	_ model.Classifier  = (*Model)(nil)
	_ model.BatchScorer = (*Model)(nil)
)

// Train fits the ensemble on raw features and boolean labels. The RMSE
// objective regresses residuals toward the 0/1 labels, so raw scores live
// in [0, 1]-ish and rank transactions by fraud suspicion.
func Train(m *feature.Matrix, labels []bool, cfg Config) *Model {
	if m.Rows != len(labels) {
		panic(fmt.Sprintf("gbdt: %d rows vs %d labels", m.Rows, len(labels)))
	}
	if cfg.Trees < 1 || cfg.Depth < 1 || cfg.Bins < 2 || cfg.Bins > 256 ||
		cfg.Subsample <= 0 || cfg.Subsample > 1 || cfg.ColSample <= 0 || cfg.ColSample > 1 {
		panic(fmt.Sprintf("gbdt: bad config %+v", cfg))
	}
	disc := feature.FitDiscretizer(m, cfg.Bins)
	binned := disc.Transform(m)

	y := make([]float64, m.Rows)
	var base float64
	for i, l := range labels {
		if l {
			y[i] = 1
			base++
		}
	}
	base /= float64(m.Rows)

	out := &Model{
		Disc: disc, Base: base, Features: m.Cols, Depth: cfg.Depth,
		TreesArr: make([]Tree, 0, cfg.Trees),
	}

	pred := make([]float64, m.Rows)
	for i := range pred {
		pred[i] = base
	}
	grad := make([]float64, m.Rows) // negative gradient = residual for RMSE

	r := rng.New(cfg.Seed)
	nSample := int(cfg.Subsample * float64(m.Rows))
	if nSample < 1 {
		nSample = 1
	}
	nCols := int(cfg.ColSample * float64(m.Cols))
	if nCols < 1 {
		nCols = 1
	}
	rows := make([]int, m.Rows)
	for i := range rows {
		rows[i] = i
	}
	b := newTreeBuilder(binned, cfg)

	for t := 0; t < cfg.Trees; t++ {
		tr := r.Split(uint64(t) + 1)
		for i := range grad {
			grad[i] = y[i] - pred[i]
		}
		// Row subsample: partial Fisher-Yates for the first nSample slots.
		for i := 0; i < nSample; i++ {
			j := i + tr.Intn(m.Rows-i)
			rows[i], rows[j] = rows[j], rows[i]
		}
		// Column subsample.
		cols := tr.Perm(m.Cols)[:nCols]
		tree := b.build(rows[:nSample], cols, grad, tr)
		// Scale leaves by the learning rate and update all predictions.
		for i := range tree.Nodes {
			if tree.Nodes[i].Col < 0 {
				tree.Nodes[i].Value *= cfg.LearningRate
			}
		}
		for i := 0; i < m.Rows; i++ {
			pred[i] += tree.eval(binned.Row(i))
		}
		out.TreesArr = append(out.TreesArr, tree)
	}
	return out
}

// treeBuilder grows one level-wise tree over pre-binned data.
type treeBuilder struct {
	data *feature.Binned
	cfg  Config
	// node assignment of each training row during growth
	nodeOf []int32
	// histograms: [node][col][bin] -> (sum, count)
	histSum [][]float64
	histCnt [][]float64
}

func newTreeBuilder(data *feature.Binned, cfg Config) *treeBuilder {
	maxNodes := 1 << cfg.Depth
	b := &treeBuilder{
		data:    data,
		cfg:     cfg,
		nodeOf:  make([]int32, data.Rows),
		histSum: make([][]float64, maxNodes),
		histCnt: make([][]float64, maxNodes),
	}
	for i := range b.histSum {
		b.histSum[i] = make([]float64, data.Cols*cfg.Bins)
		b.histCnt[i] = make([]float64, data.Cols*cfg.Bins)
	}
	return b
}

func (b *treeBuilder) build(rows []int, cols []int, grad []float64, r *rng.RNG) Tree {
	cfg := b.cfg
	nNodes := 1<<(cfg.Depth+1) - 1
	tree := Tree{Nodes: make([]TreeNode, nNodes)}
	for i := range tree.Nodes {
		tree.Nodes[i].Col = -1
	}
	for _, i := range rows {
		b.nodeOf[i] = 0
	}
	for depth := 0; depth < cfg.Depth; depth++ {
		// Zero histograms of the nodes in this level. Node-local index =
		// flat index - (2^depth - 1).
		first := int32(1<<depth) - 1
		count := 1 << depth
		for n := 0; n < count; n++ {
			hs, hc := b.histSum[n], b.histCnt[n]
			for k := range hs {
				hs[k] = 0
				hc[k] = 0
			}
		}
		// One pass over rows accumulates every node's histograms.
		for _, i := range rows {
			nd := b.nodeOf[i]
			if nd < 0 {
				continue // row settled in a leaf
			}
			local := nd - first
			rowBins := b.data.Row(i)
			hs, hc := b.histSum[local], b.histCnt[local]
			g := grad[i]
			for _, c := range cols {
				k := c*cfg.Bins + int(rowBins[c])
				hs[k] += g
				hc[k]++
			}
		}
		// Choose the best split per node.
		type split struct {
			col   int
			thr   int
			valid bool
		}
		splits := make([]split, count)
		for n := 0; n < count; n++ {
			flat := first + int32(n)
			hs, hc := b.histSum[n], b.histCnt[n]
			// Node totals from the first sampled column.
			var totSum, totCnt float64
			c0 := cols[0]
			for bin := 0; bin < cfg.Bins; bin++ {
				totSum += hs[c0*cfg.Bins+bin]
				totCnt += hc[c0*cfg.Bins+bin]
			}
			if totCnt < float64(2*cfg.MinLeaf) {
				b.finalizeLeaf(&tree, flat, totSum, totCnt)
				continue
			}
			parentScore := totSum * totSum / (totCnt + cfg.Lambda)
			bestGain := 1e-12
			var best split
			for _, c := range cols {
				var lSum, lCnt float64
				for bin := 0; bin < cfg.Bins-1; bin++ {
					k := c*cfg.Bins + bin
					lSum += hs[k]
					lCnt += hc[k]
					rCnt := totCnt - lCnt
					if lCnt < float64(cfg.MinLeaf) || rCnt < float64(cfg.MinLeaf) {
						continue
					}
					rSum := totSum - lSum
					gain := lSum*lSum/(lCnt+cfg.Lambda) + rSum*rSum/(rCnt+cfg.Lambda) - parentScore
					if gain > bestGain {
						bestGain = gain
						best = split{col: c, thr: bin, valid: true}
					}
				}
			}
			if !best.valid {
				b.finalizeLeaf(&tree, flat, totSum, totCnt)
				continue
			}
			splits[n] = best
			tree.Nodes[flat].Col = int32(best.col)
			tree.Nodes[flat].Thr = uint8(best.thr)
		}
		// Route rows to children (or mark settled rows with -1).
		for _, i := range rows {
			nd := b.nodeOf[i]
			if nd < 0 {
				continue
			}
			local := nd - first
			sp := splits[local]
			if !sp.valid {
				b.nodeOf[i] = -1
				continue
			}
			if b.data.At(i, sp.col) <= uint8(sp.thr) {
				b.nodeOf[i] = 2*nd + 1
			} else {
				b.nodeOf[i] = 2*nd + 2
			}
		}
	}
	// Final level: everything still routed becomes a leaf with the mean
	// gradient of its rows.
	first := int32(1<<cfg.Depth) - 1
	count := 1 << cfg.Depth
	sums := make([]float64, count)
	cnts := make([]float64, count)
	for _, i := range rows {
		nd := b.nodeOf[i]
		if nd < 0 {
			continue
		}
		sums[nd-first] += grad[i]
		cnts[nd-first]++
	}
	for n := 0; n < count; n++ {
		b.finalizeLeaf(&tree, first+int32(n), sums[n], cnts[n])
	}
	return tree
}

func (b *treeBuilder) finalizeLeaf(tree *Tree, flat int32, sum, cnt float64) {
	tree.Nodes[flat].Col = -1
	if cnt > 0 {
		tree.Nodes[flat].Value = sum / (cnt + b.cfg.Lambda)
	}
}

// eval walks one tree over a pre-binned row.
func (t *Tree) eval(bins []uint8) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Col < 0 {
			return n.Value
		}
		if bins[n.Col] <= n.Thr {
			i = 2*i + 1
		} else {
			i = 2*i + 2
		}
	}
}

// Score returns the ensemble prediction for a raw feature vector; values
// approximate the fraud probability (RMSE regression toward 0/1 labels).
func (mo *Model) Score(x []float64) float64 {
	if len(x) != mo.Features {
		panic(fmt.Sprintf("gbdt: input has %d features, model wants %d", len(x), mo.Features))
	}
	bins := make([]uint8, mo.Features)
	for j, v := range x {
		bins[j] = uint8(mo.Disc.Bin(j, v))
	}
	s := mo.Base
	for i := range mo.TreesArr {
		s += mo.TreesArr[i].eval(bins)
	}
	return s
}

// ScoreBatch implements model.BatchScorer through the compiled predictor:
// the batch is discretised once (not once per row), then the contiguous
// SoA tree blocks stream over row blocks — across a worker pool for large
// batches — with the depth-3 traversal fully unrolled. Scores are bitwise
// identical to calling Score per row; the scalar walk remains as the
// fallback for models whose trees are not complete arrays.
func (mo *Model) ScoreBatch(dst []float64, m *feature.Matrix) {
	if m.Cols != mo.Features {
		panic(fmt.Sprintf("gbdt: matrix has %d features, model wants %d", m.Cols, mo.Features))
	}
	// Train bounds Bins to 256, but a decoded bundle is not trainer
	// output: fall back to the scalar walk rather than let Transform
	// panic on an unpackable discretiser.
	if !mo.Disc.BytePackable() {
		for i := 0; i < m.Rows; i++ {
			dst[i] = mo.Score(m.Row(i))
		}
		return
	}
	binned := mo.Disc.Transform(m)
	mo.compileOnce.Do(func() { mo.compiledSoA = compile(mo) })
	if c := mo.compiledSoA; c != nil {
		c.predictAll(dst, binned, mo.Base)
		return
	}
	for i := 0; i < m.Rows; i++ {
		bins := binned.Row(i)
		s := mo.Base
		for t := range mo.TreesArr {
			s += mo.TreesArr[t].eval(bins)
		}
		dst[i] = s
	}
}

// ScoreBinned scores a matrix through the batch path, allocating the
// output slice. Kept for callers predating ScoreBatch.
func (mo *Model) ScoreBinned(m *feature.Matrix) []float64 {
	out := make([]float64, m.Rows)
	mo.ScoreBatch(out, m)
	return out
}

// NumFeatures implements model.Classifier.
func (mo *Model) NumFeatures() int { return mo.Features }

// NumTrees returns the number of boosted trees.
func (mo *Model) NumTrees() int { return len(mo.TreesArr) }
