// Package lr implements the paper's Logistic Regression detector:
// features are discretised into equal-frequency bins ("better performance
// can be achieved after feature discretization"; the paper's best bin size
// is 200), the binned values are one-hot encoded, and the model is trained
// with FTRL-Proximal, which realises the paper's L1 regularisation (weight
// 0.1) as exact sparsity-inducing proximal updates.
package lr

import (
	"encoding/gob"
	"fmt"
	"math"

	"titant/internal/feature"
	"titant/internal/model"
	"titant/internal/rng"
)

func init() { gob.Register(&Model{}) }

// Config holds LR hyperparameters.
type Config struct {
	Bins       int     // discretisation buckets per feature (paper best: 200)
	L1         float64 // L1 weight (paper: 0.1)
	L2         float64 // small L2 for stability
	Alpha      float64 // FTRL learning-rate scale
	Beta       float64 // FTRL learning-rate offset
	Iterations int     // epochs over the training set (paper: 300)
	Seed       uint64
}

// DefaultConfig returns the paper-aligned settings, translated to this
// trainer: 200 discretisation bins (the paper's best), a laptop-scale
// epoch count (FTRL on one-hot features converges far faster than the
// batch solver the paper budgets 300 iterations for), and L1=8. The
// paper's "L1 weight 0.1" applies to an averaged batch loss; FTRL's l1
// compares against the *summed* gradient accumulator z, so the equivalent
// absolute threshold is larger (0.1 x an effective per-bin sample count).
func DefaultConfig() Config {
	return Config{Bins: 200, L1: 8, L2: 0.5, Alpha: 0.08, Beta: 1, Iterations: 25, Seed: 1}
}

// Model is a trained discretised logistic regression. One weight exists per
// (feature, bin) pair plus a bias; scoring sums the active bins' weights.
type Model struct {
	Disc     *feature.Discretizer
	Offsets  []int // start of each column's weight block
	W        []float64
	Bias     float64
	Features int
}

var (
	_ model.Classifier  = (*Model)(nil)
	_ model.BatchScorer = (*Model)(nil)
)

// Train fits LR with FTRL-Proximal on raw features and boolean labels.
func Train(m *feature.Matrix, labels []bool, cfg Config) *Model {
	if m.Rows != len(labels) {
		panic(fmt.Sprintf("lr: %d rows vs %d labels", m.Rows, len(labels)))
	}
	if cfg.Bins < 2 || cfg.Iterations < 1 {
		panic(fmt.Sprintf("lr: bad config %+v", cfg))
	}
	disc := feature.FitDiscretizer(m, cfg.Bins)
	binned := disc.Transform(m)

	offsets := make([]int, m.Cols+1)
	for j := 0; j < m.Cols; j++ {
		offsets[j+1] = offsets[j] + disc.NumBins(j)
	}
	dim := offsets[m.Cols]

	// FTRL state.
	z := make([]float64, dim+1) // +1 bias at the end
	n := make([]float64, dim+1)
	w := make([]float64, dim+1)
	biasIdx := dim

	weightOf := func(i int) float64 {
		zi := z[i]
		l1 := cfg.L1
		if i == biasIdx {
			l1 = 0 // never shrink the bias
		}
		if math.Abs(zi) <= l1 {
			return 0
		}
		sign := 1.0
		if zi < 0 {
			sign = -1
		}
		return -(zi - sign*l1) / ((cfg.Beta+math.Sqrt(n[i]))/cfg.Alpha + cfg.L2)
	}

	r := rng.New(cfg.Seed)
	order := make([]int, m.Rows)
	for i := range order {
		order[i] = i
	}
	active := make([]int, m.Cols+1)
	for epoch := 0; epoch < cfg.Iterations; epoch++ {
		r.ShuffleInts(order)
		for _, row := range order {
			bins := binned.Row(row)
			for j, b := range bins {
				active[j] = offsets[j] + int(b)
			}
			active[m.Cols] = biasIdx
			var dot float64
			for _, idx := range active {
				w[idx] = weightOf(idx)
				dot += w[idx]
			}
			p := model.Sigmoid(dot)
			y := 0.0
			if labels[row] {
				y = 1
			}
			g := p - y // gradient per active one-hot coordinate
			g2 := g * g
			for _, idx := range active {
				sigma := (math.Sqrt(n[idx]+g2) - math.Sqrt(n[idx])) / cfg.Alpha
				z[idx] += g - sigma*w[idx]
				n[idx] += g2
			}
		}
	}
	// Materialise final weights.
	out := &Model{Disc: disc, Offsets: offsets, Features: m.Cols, W: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		out.W[i] = weightOf(i)
	}
	out.Bias = weightOf(biasIdx)
	return out
}

// Score returns the fraud probability of a raw feature vector.
func (mo *Model) Score(x []float64) float64 {
	if len(x) != mo.Features {
		panic(fmt.Sprintf("lr: input has %d features, model wants %d", len(x), mo.Features))
	}
	dot := mo.Bias
	for j, v := range x {
		dot += mo.W[mo.Offsets[j]+mo.Disc.Bin(j, v)]
	}
	return model.Sigmoid(dot)
}

// ScoreBatch implements model.BatchScorer: the batch is discretised once,
// then each row is a fused gather-accumulate over the one-hot weight
// blocks — no per-row binning, no intermediate slices. The per-row sum
// runs in column order, so scores are bitwise identical to Score.
func (mo *Model) ScoreBatch(dst []float64, m *feature.Matrix) {
	if m.Cols != mo.Features {
		panic(fmt.Sprintf("lr: matrix has %d features, model wants %d", m.Cols, mo.Features))
	}
	// A model trained with more than 256 bins per column cannot use the
	// byte-packed batch binning (Transform would panic); fall back to the
	// scalar walk rather than let a serving request crash.
	if !mo.Disc.BytePackable() {
		for i := 0; i < m.Rows; i++ {
			dst[i] = mo.Score(m.Row(i))
		}
		return
	}
	binned := mo.Disc.Transform(m)
	w, offsets := mo.W, mo.Offsets
	for i := 0; i < m.Rows; i++ {
		bins := binned.Row(i)
		dot := mo.Bias
		for j, b := range bins {
			dot += w[offsets[j]+int(b)]
		}
		dst[i] = model.Sigmoid(dot)
	}
}

// NumFeatures implements model.Classifier.
func (mo *Model) NumFeatures() int { return mo.Features }

// Sparsity returns the fraction of exactly-zero weights (the visible effect
// of L1 regularisation).
func (mo *Model) Sparsity() float64 {
	if len(mo.W) == 0 {
		return 0
	}
	zero := 0
	for _, w := range mo.W {
		if w == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(mo.W))
}
