package lr

import (
	"math"
	"testing"

	"titant/internal/feature"
	"titant/internal/metrics"
	"titant/internal/model"
	"titant/internal/rng"
)

// mustScores is a test shim over the error-returning model.ScoreMatrix.
func mustScores(c model.Classifier, m *feature.Matrix) []float64 {
	s, err := model.ScoreMatrix(c, m)
	if err != nil {
		panic(err)
	}
	return s
}

// linearData labels rows by a noisy linear rule over two features.
func linearData(n int, seed uint64) (*feature.Matrix, []bool) {
	r := rng.New(seed)
	m := feature.NewMatrix(n, 4)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, r.NormFloat64())
		}
		z := 2*m.At(i, 0) - 1.5*m.At(i, 1) + 0.3*r.NormFloat64()
		labels[i] = z > 0
	}
	return m, labels
}

func TestLearnsLinearRule(t *testing.T) {
	m, labels := linearData(4000, 1)
	mt, lt := linearData(1000, 2)
	mo := Train(m, labels, Config{Bins: 32, L1: 0.02, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 20, Seed: 1})
	scores := mustScores(mo, mt)
	if auc := metrics.AUC(scores, lt); auc < 0.95 {
		t.Errorf("held-out AUC %.3f < 0.95", auc)
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	m, labels := linearData(1000, 3)
	mo := Train(m, labels, DefaultConfig())
	for i := 0; i < m.Rows; i += 7 {
		s := mo.Score(m.Row(i))
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v not a probability", s)
		}
	}
}

func TestL1InducesSparsity(t *testing.T) {
	// On label noise, z accumulators are mean-zero random walks; strong L1
	// must clamp most of them to exactly zero while weak L1 keeps them.
	r := rng.New(4)
	m := feature.NewMatrix(2000, 4)
	labels := make([]bool, 2000)
	for i := range labels {
		for j := 0; j < 4; j++ {
			m.Set(i, j, r.NormFloat64())
		}
		labels[i] = r.Bool(0.5)
	}
	weak := Train(m, labels, Config{Bins: 64, L1: 0.0001, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 3, Seed: 1})
	strong := Train(m, labels, Config{Bins: 64, L1: 6.0, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 3, Seed: 1})
	if strong.Sparsity() <= weak.Sparsity()+0.2 {
		t.Errorf("L1=6 sparsity %.3f not well above L1=0.0001 sparsity %.3f", strong.Sparsity(), weak.Sparsity())
	}
	if strong.Sparsity() < 0.3 {
		t.Errorf("strong L1 sparsity only %.3f", strong.Sparsity())
	}
}

func TestImbalancedBaseRate(t *testing.T) {
	// With 2% positives and no signal, predicted probabilities must hover
	// near the base rate (the bias term must learn it).
	r := rng.New(5)
	m := feature.NewMatrix(4000, 3)
	labels := make([]bool, 4000)
	for i := range labels {
		for j := 0; j < 3; j++ {
			m.Set(i, j, r.Float64())
		}
		labels[i] = r.Bool(0.02)
	}
	mo := Train(m, labels, DefaultConfig())
	var mean float64
	for i := 0; i < m.Rows; i++ {
		mean += mo.Score(m.Row(i))
	}
	mean /= float64(m.Rows)
	if mean < 0.002 || mean > 0.1 {
		t.Errorf("mean predicted prob %.4f far from base rate 0.02", mean)
	}
}

func TestDiscretizationCapturesNonMonotone(t *testing.T) {
	// y = 1 iff |x| > 1: linear-in-x LR fails, binned LR succeeds. This is
	// the paper's rationale for discretising LR inputs.
	r := rng.New(6)
	m := feature.NewMatrix(4000, 1)
	labels := make([]bool, 4000)
	for i := range labels {
		x := r.NormFloat64() * 1.5
		m.Set(i, 0, x)
		labels[i] = math.Abs(x) > 1
	}
	mo := Train(m, labels, Config{Bins: 32, L1: 0.01, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 20, Seed: 1})
	scores := mustScores(mo, m)
	if auc := metrics.AUC(scores, labels); auc < 0.95 {
		t.Errorf("binned LR AUC on |x|>1 rule: %.3f < 0.95", auc)
	}
}

func TestDeterminism(t *testing.T) {
	m, labels := linearData(800, 7)
	a := Train(m, labels, DefaultConfig())
	b := Train(m, labels, DefaultConfig())
	for i := 0; i < m.Rows; i += 13 {
		if a.Score(m.Row(i)) != b.Score(m.Row(i)) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	m, labels := linearData(500, 8)
	mo := Train(m, labels, DefaultConfig())
	data, err := model.Encode(mo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows; i += 29 {
		if c.Score(m.Row(i)) != mo.Score(m.Row(i)) {
			t.Fatal("decoded scores differ")
		}
	}
}

func TestPanics(t *testing.T) {
	m, labels := linearData(100, 9)
	for name, fn := range map[string]func(){
		"mismatch": func() { Train(m, labels[:50], DefaultConfig()) },
		"bins":     func() { Train(m, labels, Config{Bins: 1, Iterations: 5}) },
		"width": func() {
			mo := Train(m, labels, DefaultConfig())
			mo.Score([]float64{1})
		},
	} {
		func() {
			defer func() { _ = recover() }()
			fn()
			t.Errorf("%s did not panic", name)
		}()
	}
}

func BenchmarkTrain(b *testing.B) {
	m, labels := linearData(5000, 1)
	cfg := DefaultConfig()
	cfg.Iterations = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(m, labels, cfg)
	}
}

func BenchmarkScore(b *testing.B) {
	m, labels := linearData(1000, 1)
	mo := Train(m, labels, DefaultConfig())
	x := m.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mo.Score(x)
	}
}

// TestScoreBatchBitwiseIdentical pins the fused batch path to the scalar
// one: the one-shot discretisation and per-row gather must reproduce
// Score's bits exactly.
func TestScoreBatchBitwiseIdentical(t *testing.T) {
	m, labels := linearData(3000, 3)
	mo := Train(m, labels, Config{Bins: 64, L1: 0.02, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 15, Seed: 1})
	for _, rows := range []int{1, 17, 500} {
		mt, _ := linearData(rows, uint64(rows)+7)
		got := make([]float64, rows)
		mo.ScoreBatch(got, mt)
		for i := 0; i < rows; i++ {
			if want := mo.Score(mt.Row(i)); got[i] != want {
				t.Fatalf("rows=%d row %d: batch %v != scalar %v", rows, i, got[i], want)
			}
		}
	}
}

// A model whose discretiser holds more than 256 bins per column (not
// producible by this trainer, but decodable from a bundle built by an
// external pipeline — the paper's LR sweeps reach bin size 500) cannot
// byte-pack its batch binning: ScoreBatch must fall back to the scalar
// walk instead of panicking — a serving request must never be able to
// crash on a wide-binned bundle.
func TestScoreBatchWideBinsFallsBack(t *testing.T) {
	r := rng.New(11)
	cuts := make([]float64, 300) // 301 buckets in column 0
	for i := range cuts {
		cuts[i] = float64(i) / 100
	}
	disc := &feature.Discretizer{Cuts: [][]float64{cuts, {0.5}}}
	if disc.BytePackable() {
		t.Fatal("fixture discretiser unexpectedly packable")
	}
	w := make([]float64, disc.NumBins(0)+disc.NumBins(1))
	for i := range w {
		w[i] = r.NormFloat64()
	}
	mo := &Model{
		Disc:     disc,
		Offsets:  []int{0, disc.NumBins(0)},
		W:        w,
		Bias:     0.25,
		Features: 2,
	}
	m := feature.NewMatrix(50, 2)
	for i := 0; i < m.Rows; i++ {
		m.Set(i, 0, r.Float64()*4-0.5)
		m.Set(i, 1, r.Float64())
	}
	got := make([]float64, m.Rows)
	mo.ScoreBatch(got, m) // must not panic
	for i := 0; i < m.Rows; i++ {
		if want := mo.Score(m.Row(i)); got[i] != want {
			t.Fatalf("row %d: fallback %v != scalar %v", i, got[i], want)
		}
	}
}
