package model

import (
	"encoding/gob"
	"errors"
	"math"
	"testing"

	"titant/internal/feature"
)

// constModel is a trivial classifier for testing the helpers.
type constModel struct {
	V float64
	N int
}

func (c *constModel) Score(x []float64) float64 { return c.V }
func (c *constModel) NumFeatures() int          { return c.N }

func init() { gob.Register(&constModel{}) }

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(1000); s != 1 {
		t.Errorf("Sigmoid(1000) = %v", s)
	}
	if s := Sigmoid(-1000); s != 0 && s > 1e-300 {
		t.Errorf("Sigmoid(-1000) = %v", s)
	}
	// Symmetry: sigmoid(-z) = 1 - sigmoid(z).
	for _, z := range []float64{0.1, 1, 5, 20} {
		if d := math.Abs(Sigmoid(-z) - (1 - Sigmoid(z))); d > 1e-12 {
			t.Errorf("symmetry broken at %v: %v", z, d)
		}
	}
	// Monotone.
	if Sigmoid(1) <= Sigmoid(0) || Sigmoid(2) <= Sigmoid(1) {
		t.Error("sigmoid not monotone")
	}
}

func TestScoreMatrix(t *testing.T) {
	m := feature.NewMatrix(3, 2)
	c := &constModel{V: 0.7, N: 2}
	out, err := ScoreMatrix(c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 0.7 {
		t.Fatalf("ScoreMatrix = %v", out)
	}
}

// A width mismatch is an error value, never a panic: a bad hot-swapped
// bundle must not be able to crash a serving process.
func TestScoreMatrixWidthError(t *testing.T) {
	if _, err := ScoreMatrix(&constModel{N: 5}, feature.NewMatrix(2, 3)); !errors.Is(err, ErrWidth) {
		t.Fatalf("err = %v, want ErrWidth", err)
	}
	if err := ScoreMatrixInto(make([]float64, 1), &constModel{N: 3}, feature.NewMatrix(2, 3)); !errors.Is(err, ErrWidth) {
		t.Fatalf("short dst err = %v, want ErrWidth", err)
	}
}

// batchModel counts ScoreBatch calls so dispatch is observable.
type batchModel struct {
	constModel
	batchCalls int
}

func (b *batchModel) ScoreBatch(dst []float64, m *feature.Matrix) {
	b.batchCalls++
	for i := range dst {
		dst[i] = b.V
	}
}

// ScoreMatrix must route through the detector's batch path when one exists.
func TestScoreMatrixDispatchesBatchScorer(t *testing.T) {
	b := &batchModel{constModel: constModel{V: 0.3, N: 2}}
	out, err := ScoreMatrix(b, feature.NewMatrix(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if b.batchCalls != 1 {
		t.Fatalf("batchCalls = %d, want 1", b.batchCalls)
	}
	for i, v := range out {
		if v != 0.3 {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := &constModel{V: 0.42, N: 7}
	data, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score(nil) != 0.42 || got.NumFeatures() != 7 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode accepted empty input")
	}
}
