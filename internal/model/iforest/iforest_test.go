package iforest

import (
	"testing"

	"titant/internal/feature"
	"titant/internal/model"
	"titant/internal/rng"
)

// cluster builds a matrix of n points near the origin plus k far outliers
// at the end.
func cluster(n, k int) *feature.Matrix {
	r := rng.New(42)
	m := feature.NewMatrix(n+k, 3)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	for i := n; i < n+k; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, 25+5*r.NormFloat64())
		}
	}
	return m
}

func TestOutliersScoreHigher(t *testing.T) {
	m := cluster(500, 10)
	f := Train(m, Config{Trees: 100, SampleSize: 128, Seed: 7})
	var inlier, outlier float64
	for i := 0; i < 500; i++ {
		inlier += f.Score(m.Row(i))
	}
	inlier /= 500
	for i := 500; i < 510; i++ {
		outlier += f.Score(m.Row(i))
	}
	outlier /= 10
	if outlier <= inlier+0.1 {
		t.Errorf("outlier score %.3f not above inlier %.3f", outlier, inlier)
	}
}

func TestScoresInUnitInterval(t *testing.T) {
	m := cluster(200, 5)
	f := Train(m, DefaultConfig())
	for i := 0; i < m.Rows; i++ {
		s := f.Score(m.Row(i))
		if s <= 0 || s >= 1 {
			t.Fatalf("score %v outside (0,1)", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := cluster(300, 5)
	cfg := Config{Trees: 50, SampleSize: 64, Seed: 3}
	f1 := Train(m, cfg)
	f2 := Train(m, cfg)
	for i := 0; i < m.Rows; i += 17 {
		if f1.Score(m.Row(i)) != f2.Score(m.Row(i)) {
			t.Fatalf("same seed, different scores at row %d", i)
		}
	}
}

func TestConstantData(t *testing.T) {
	m := feature.NewMatrix(100, 2)
	for i := 0; i < 100; i++ {
		m.Set(i, 0, 1)
		m.Set(i, 1, 2)
	}
	f := Train(m, Config{Trees: 10, SampleSize: 32, Seed: 1})
	s := f.Score([]float64{1, 2})
	if s <= 0 || s >= 1 {
		t.Fatalf("constant-data score %v", s)
	}
}

func TestSmallSample(t *testing.T) {
	m := cluster(10, 1)
	f := Train(m, Config{Trees: 5, SampleSize: 256, Seed: 1}) // clamps to 11
	if f.NumFeatures() != 3 {
		t.Fatal("feature count wrong")
	}
	_ = f.Score(m.Row(0))
}

func TestEncodeDecode(t *testing.T) {
	m := cluster(200, 5)
	f := Train(m, Config{Trees: 20, SampleSize: 64, Seed: 9})
	data, err := model.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows; i += 31 {
		if c.Score(m.Row(i)) != f.Score(m.Row(i)) {
			t.Fatal("decoded model scores differ")
		}
	}
}

func TestScorePanicsOnWidth(t *testing.T) {
	m := cluster(50, 1)
	f := Train(m, Config{Trees: 5, SampleSize: 32, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong width")
		}
	}()
	f.Score([]float64{1})
}

func TestTrainPanicsOnBadConfig(t *testing.T) {
	m := cluster(50, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero trees")
		}
	}()
	Train(m, Config{Trees: 0, SampleSize: 32})
}

func TestAvgPathLength(t *testing.T) {
	if avgPathLength(1) != 0 || avgPathLength(0) != 0 {
		t.Error("c(<=1) must be 0")
	}
	// c(2) = 2*(ln 1 + gamma) - 2*1/2 = 2*gamma - 1 ~ 0.1544
	got := avgPathLength(2)
	if got < 0.15 || got > 0.16 {
		t.Errorf("c(2) = %v", got)
	}
	if avgPathLength(256) <= avgPathLength(64) {
		t.Error("c(n) must grow with n")
	}
}

func BenchmarkTrain(b *testing.B) {
	m := cluster(2000, 20)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(m, cfg)
	}
}

func BenchmarkScore(b *testing.B) {
	m := cluster(2000, 20)
	f := Train(m, DefaultConfig())
	x := m.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Score(x)
	}
}

// TestScoreBatchBitwiseIdentical pins the batch path to the scalar one:
// same bits, on both sides of any internal chunking.
func TestScoreBatchBitwiseIdentical(t *testing.T) {
	train := cluster(600, 12)
	f := Train(train, DefaultConfig())
	for _, rows := range []int{1, 9, 300} {
		m := cluster(rows-rows/10, rows/10)
		got := make([]float64, m.Rows)
		f.ScoreBatch(got, m)
		for i := 0; i < m.Rows; i++ {
			if want := f.Score(m.Row(i)); got[i] != want {
				t.Fatalf("rows=%d row %d: batch %v != scalar %v", rows, i, got[i], want)
			}
		}
	}
	// The degenerate single-point forest serves its 0.5 fallback on the
	// batch path too.
	one := feature.NewMatrix(1, 3)
	deg := Train(one, Config{Trees: 3, SampleSize: 2, Seed: 1})
	out := make([]float64, 1)
	deg.ScoreBatch(out, one)
	if out[0] != deg.Score(one.Row(0)) {
		t.Fatalf("degenerate batch %v != scalar %v", out[0], deg.Score(one.Row(0)))
	}
}
