// Package iforest implements Isolation Forest (Liu, Ting, Zhou, ICDM 2008),
// the unsupervised anomaly detector the paper evaluates as configuration 1
// of Table 1 ("Basic Features/Attributes + IF", 100 trees, raw basic
// features as attributes, no labels).
package iforest

import (
	"encoding/gob"
	"fmt"
	"math"

	"titant/internal/feature"
	"titant/internal/model"
	"titant/internal/rng"
)

func init() { gob.Register(&Forest{}) }

// Config holds Isolation Forest hyperparameters.
type Config struct {
	Trees      int    // number of isolation trees (paper: 100)
	SampleSize int    // subsample per tree (original paper default: 256)
	Seed       uint64 // RNG seed
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{Trees: 100, SampleSize: 256, Seed: 1}
}

// Node is one node of an isolation tree. Exported for gob.
type Node struct {
	// Leaf fields.
	Size int // number of training points isolated here (leaf only)
	// Split fields (Left == nil means leaf).
	Col         int
	Threshold   float64
	Left, Right *Node
}

// Forest is a trained isolation forest.
type Forest struct {
	Trees    []*Node
	Features int
	C        float64 // average path length normaliser c(SampleSize)
}

var (
	_ model.Classifier  = (*Forest)(nil)
	_ model.BatchScorer = (*Forest)(nil)
)

// avgPathLength is c(n): the average path length of unsuccessful BST
// searches, used to normalise isolation depth.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649015329 // Euler-Mascheroni
	return 2*h - 2*float64(n-1)/float64(n)
}

// Train fits an isolation forest on the raw feature matrix. Labels are not
// used (IF is unsupervised).
func Train(m *feature.Matrix, cfg Config) *Forest {
	if cfg.Trees <= 0 || cfg.SampleSize <= 1 {
		panic(fmt.Sprintf("iforest: bad config %+v", cfg))
	}
	r := rng.New(cfg.Seed)
	sample := cfg.SampleSize
	if sample > m.Rows {
		sample = m.Rows
	}
	maxDepth := int(math.Ceil(math.Log2(float64(sample)))) + 1
	f := &Forest{
		Trees:    make([]*Node, cfg.Trees),
		Features: m.Cols,
		C:        avgPathLength(sample),
	}
	idx := make([]int, sample)
	for t := 0; t < cfg.Trees; t++ {
		tr := r.Split(uint64(t) + 1)
		for i := range idx {
			idx[i] = tr.Intn(m.Rows)
		}
		f.Trees[t] = build(m, idx, 0, maxDepth, tr)
	}
	return f
}

func build(m *feature.Matrix, idx []int, depth, maxDepth int, r *rng.RNG) *Node {
	if len(idx) <= 1 || depth >= maxDepth {
		return &Node{Size: len(idx)}
	}
	// Pick a random feature with spread; give up after a few attempts (all
	// remaining points identical).
	for attempt := 0; attempt < 8; attempt++ {
		col := r.Intn(m.Cols)
		lo, hi := m.At(idx[0], col), m.At(idx[0], col)
		for _, i := range idx[1:] {
			v := m.At(i, col)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		thr := lo + r.Float64()*(hi-lo)
		var left, right []int
		for _, i := range idx {
			if m.At(i, col) < thr {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		return &Node{
			Col:       col,
			Threshold: thr,
			Left:      build(m, left, depth+1, maxDepth, r),
			Right:     build(m, right, depth+1, maxDepth, r),
		}
	}
	return &Node{Size: len(idx)}
}

// pathLength returns the isolation depth of x in one tree, with the
// standard c(size) correction at non-singleton leaves.
func pathLength(n *Node, x []float64, depth float64) float64 {
	if n.Left == nil {
		return depth + avgPathLength(n.Size)
	}
	if x[n.Col] < n.Threshold {
		return pathLength(n.Left, x, depth+1)
	}
	return pathLength(n.Right, x, depth+1)
}

// Score returns the anomaly score s(x) = 2^(-E[h(x)]/c(n)) in (0, 1);
// values near 1 indicate isolation in few splits, i.e. outliers.
func (f *Forest) Score(x []float64) float64 {
	if len(x) != f.Features {
		panic(fmt.Sprintf("iforest: input has %d features, model wants %d", len(x), f.Features))
	}
	var sum float64
	for _, t := range f.Trees {
		sum += pathLength(t, x, 0)
	}
	mean := sum / float64(len(f.Trees))
	if f.C == 0 {
		return 0.5
	}
	return math.Pow(2, -mean/f.C)
}

// ScoreBatch implements model.BatchScorer: trees run in the outer loop so
// each tree's node graph stays cache-resident while it streams the batch,
// and the walk is iterative instead of recursive. Every row accumulates
// its per-tree path lengths in ascending tree order, so scores are
// bitwise identical to Score.
func (f *Forest) ScoreBatch(dst []float64, m *feature.Matrix) {
	if m.Cols != f.Features {
		panic(fmt.Sprintf("iforest: matrix has %d features, model wants %d", m.Cols, f.Features))
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, tr := range f.Trees {
		for i := 0; i < m.Rows; i++ {
			x := m.Row(i)
			n, depth := tr, 0.0
			for n.Left != nil {
				if x[n.Col] < n.Threshold {
					n = n.Left
				} else {
					n = n.Right
				}
				depth++
			}
			dst[i] += depth + avgPathLength(n.Size)
		}
	}
	nTrees := float64(len(f.Trees))
	for i := range dst {
		if f.C == 0 {
			dst[i] = 0.5
			continue
		}
		dst[i] = math.Pow(2, -dst[i]/nTrees/f.C)
	}
}

// NumFeatures implements model.Classifier.
func (f *Forest) NumFeatures() int { return f.Features }
