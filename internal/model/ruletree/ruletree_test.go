package ruletree

import (
	"math"
	"testing"

	"titant/internal/feature"
	"titant/internal/metrics"
	"titant/internal/model"
	"titant/internal/rng"
)

// xorData builds a dataset whose label is the XOR of two binary-ish
// features - learnable by a depth>=2 tree, not by any single split.
func xorData(n int, seed uint64) (*feature.Matrix, []bool) {
	r := rng.New(seed)
	m := feature.NewMatrix(n, 4)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		a, b := r.Bool(0.5), r.Bool(0.5)
		set := func(j int, v bool) {
			x := r.Float64() * 0.4
			if v {
				x += 0.6
			}
			m.Set(i, j, x)
		}
		set(0, a)
		set(1, b)
		m.Set(i, 2, r.NormFloat64()) // noise
		m.Set(i, 3, r.Float64())     // noise
		labels[i] = a != b
	}
	return m, labels
}

// conjunctionData labels rows positive when three conditions hold jointly,
// with label noise.
func conjunctionData(n int, seed uint64) (*feature.Matrix, []bool) {
	r := rng.New(seed)
	m := feature.NewMatrix(n, 5)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, r.Float64())
		}
		y := m.At(i, 0) > 0.6 && m.At(i, 1) > 0.5 && m.At(i, 2) < 0.4
		if r.Bool(0.05) {
			y = !y
		}
		labels[i] = y
	}
	return m, labels
}

// mustScores is a test shim over the error-returning model.ScoreMatrix.
func mustScores(c model.Classifier, m *feature.Matrix) []float64 {
	s, err := model.ScoreMatrix(c, m)
	if err != nil {
		panic(err)
	}
	return s
}

func accuracy(t *Tree, m *feature.Matrix, labels []bool) float64 {
	scores := mustScores(t, m)
	c := metrics.Confuse(scores, labels, 0.5)
	return c.Accuracy()
}

func TestID3LearnsXOR(t *testing.T) {
	m, labels := xorData(2000, 1)
	tree := Train(m, labels, DefaultID3())
	if acc := accuracy(tree, m, labels); acc < 0.95 {
		t.Errorf("ID3 XOR accuracy %.3f < 0.95", acc)
	}
}

func TestC50LearnsXOR(t *testing.T) {
	m, labels := xorData(2000, 2)
	tree := Train(m, labels, DefaultC50())
	if acc := accuracy(tree, m, labels); acc < 0.95 {
		t.Errorf("C5.0 XOR accuracy %.3f < 0.95", acc)
	}
}

func TestC50GeneralizesConjunction(t *testing.T) {
	m, labels := conjunctionData(3000, 3)
	mTest, lTest := conjunctionData(1000, 4)
	tree := Train(m, labels, DefaultC50())
	if acc := accuracy(tree, mTest, lTest); acc < 0.9 {
		t.Errorf("C5.0 held-out accuracy %.3f < 0.9", acc)
	}
}

func TestPruningShrinksTree(t *testing.T) {
	// Pure-noise labels: an unpruned tree overfits into many leaves; the
	// pruned C5.0 tree must collapse (nearly) to the root.
	r := rng.New(5)
	m := feature.NewMatrix(1000, 6)
	labels := make([]bool, 1000)
	for i := 0; i < 1000; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, r.Float64())
		}
		labels[i] = r.Bool(0.5)
	}
	unpruned := Train(m, labels, Config{Algorithm: C50, Bins: 32, MaxDepth: 10, MinLeaf: 15})
	pruned := Train(m, labels, DefaultC50())
	if pruned.NumLeaves() >= unpruned.NumLeaves() {
		t.Errorf("pruned leaves %d >= unpruned %d", pruned.NumLeaves(), unpruned.NumLeaves())
	}
}

func TestPureLeafStopsEarly(t *testing.T) {
	m := feature.NewMatrix(100, 2)
	labels := make([]bool, 100)
	for i := 0; i < 100; i++ {
		m.Set(i, 0, float64(i))
		m.Set(i, 1, float64(i%7))
	}
	tree := Train(m, labels, DefaultC50())
	if !tree.Root.Leaf {
		t.Error("all-negative data must produce a single leaf")
	}
	if p := tree.Score(m.Row(0)); p >= 0.5 {
		t.Errorf("all-negative leaf prob %v", p)
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	m, labels := conjunctionData(1500, 6)
	for _, cfg := range []Config{DefaultID3(), DefaultC50()} {
		tree := Train(m, labels, cfg)
		for i := 0; i < m.Rows; i += 13 {
			s := tree.Score(m.Row(i))
			if s <= 0 || s >= 1 || math.IsNaN(s) {
				t.Fatalf("%v score %v outside (0,1)", cfg.Algorithm, s)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	m, labels := conjunctionData(1000, 7)
	t1 := Train(m, labels, DefaultC50())
	t2 := Train(m, labels, DefaultC50())
	for i := 0; i < m.Rows; i += 11 {
		if t1.Score(m.Row(i)) != t2.Score(m.Row(i)) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	m, labels := conjunctionData(800, 8)
	for _, cfg := range []Config{DefaultID3(), DefaultC50()} {
		tree := Train(m, labels, cfg)
		data, err := model.Encode(tree)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
		c, err := model.Decode(data)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
		for i := 0; i < m.Rows; i += 37 {
			if c.Score(m.Row(i)) != tree.Score(m.Row(i)) {
				t.Fatalf("%v: decoded scores differ", cfg.Algorithm)
			}
		}
	}
}

func TestDepthRespected(t *testing.T) {
	m, labels := xorData(3000, 9)
	cfg := DefaultC50()
	cfg.MaxDepth = 3
	tree := Train(m, labels, cfg)
	if d := tree.Depth(); d > 3 {
		t.Errorf("depth %d > max 3", d)
	}
}

func TestMismatchedLabelsPanics(t *testing.T) {
	m, _ := xorData(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Train(m, make([]bool, 5), DefaultID3())
}

func TestBadConfigPanics(t *testing.T) {
	m, labels := xorData(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Train(m, labels, Config{Algorithm: ID3, Bins: 1, MaxDepth: 3, MinLeaf: 5})
}

func TestAlgorithmString(t *testing.T) {
	if ID3.String() != "ID3" || C50.String() != "C5.0" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm name empty")
	}
}

func TestUCBErrorMonotone(t *testing.T) {
	// More errors -> higher bound; more data with same rate -> lower bound.
	if ucbError(5, 100, 0.6745) >= ucbError(10, 100, 0.6745) {
		t.Error("ucb not monotone in errors")
	}
	if ucbError(50, 1000, 0.6745) >= ucbError(5, 100, 0.6745) {
		t.Error("ucb not shrinking with n at fixed rate")
	}
	if ucbError(0, 0, 1) != 1 {
		t.Error("ucb(0,0) != 1")
	}
}

func BenchmarkTrainC50(b *testing.B) {
	m, labels := conjunctionData(5000, 1)
	cfg := DefaultC50()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(m, labels, cfg)
	}
}

// TestScoreBatchBitwiseIdentical pins the batch-binned walk to the scalar
// one for both tree variants (ID3 multiway splits with bin clamping, C5.0
// binary threshold splits).
func TestScoreBatchBitwiseIdentical(t *testing.T) {
	m, labels := xorData(3000, 4)
	for _, cfg := range []Config{DefaultID3(), DefaultC50()} {
		tr := Train(m, labels, cfg)
		for _, rows := range []int{1, 13, 400} {
			mt, _ := xorData(rows, uint64(rows)+3)
			got := make([]float64, rows)
			tr.ScoreBatch(got, mt)
			for i := 0; i < rows; i++ {
				if want := tr.Score(mt.Row(i)); got[i] != want {
					t.Fatalf("%s rows=%d row %d: batch %v != scalar %v", cfg.Algorithm, rows, i, got[i], want)
				}
			}
		}
	}
}
