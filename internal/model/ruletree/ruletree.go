// Package ruletree implements the paper's two rule-based detectors:
// ID3 (Quinlan 1986) and a C5.0-style tree (Quinlan's C4.5 successor).
//
// Both operate on discretised features ("rule-based ID3 and C5.0 cannot
// support continuous values well, we discretize the data into different
// bins" - Section 5.1). ID3 performs multiway splits chosen by information
// gain and does not prune; C5.0 performs binary threshold splits on the
// ordinal bins, chooses them by gain ratio, and applies C4.5-style
// pessimistic pruning. Those mechanism differences are exactly what the
// paper credits for C5.0 beating ID3 by ~7% on average.
package ruletree

import (
	"encoding/gob"
	"fmt"
	"math"

	"titant/internal/feature"
	"titant/internal/model"
)

func init() { gob.Register(&Tree{}) }

// Algorithm selects the tree variant.
type Algorithm int

// Algorithm values.
const (
	ID3 Algorithm = iota
	C50
)

func (a Algorithm) String() string {
	switch a {
	case ID3:
		return "ID3"
	case C50:
		return "C5.0"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Config holds decision-tree hyperparameters.
type Config struct {
	Algorithm Algorithm
	Bins      int     // discretisation buckets
	MaxDepth  int     // maximum tree depth
	MinLeaf   int     // minimum samples per leaf
	PruneZ    float64 // C5.0 pessimistic-pruning z (0 disables; 0.6745 ~ CF 25%)
}

// DefaultID3 returns ID3 defaults: coarse bins (multiway splits explode
// otherwise), no pruning.
func DefaultID3() Config {
	return Config{Algorithm: ID3, Bins: 12, MaxDepth: 6, MinLeaf: 25}
}

// DefaultC50 returns C5.0 defaults: finer bins are safe with binary splits,
// gain-ratio criterion, pessimistic pruning at CF=25%.
func DefaultC50() Config {
	return Config{Algorithm: C50, Bins: 64, MaxDepth: 12, MinLeaf: 8, PruneZ: 0.6745}
}

// Node is one tree node. Exported for gob.
type Node struct {
	Leaf     bool
	Prob     float64 // Laplace-smoothed fraud probability (leaf)
	N        int     // training rows at this node
	Pos      int     // fraud rows at this node
	Col      int     // split feature
	Thr      uint8   // C5.0: go left when bin <= Thr
	Children []*Node // ID3: child per bin value
	Left     *Node   // C5.0 binary split
	Right    *Node
}

// Tree is a trained decision tree with its embedded discretiser.
type Tree struct {
	Algo     Algorithm
	Root     *Node
	Disc     *feature.Discretizer
	Features int
}

var (
	_ model.Classifier  = (*Tree)(nil)
	_ model.BatchScorer = (*Tree)(nil)
)

// Train fits a tree on raw features and boolean labels.
func Train(m *feature.Matrix, labels []bool, cfg Config) *Tree {
	if m.Rows != len(labels) {
		panic(fmt.Sprintf("ruletree: %d rows vs %d labels", m.Rows, len(labels)))
	}
	if cfg.Bins < 2 || cfg.MaxDepth < 1 || cfg.MinLeaf < 1 {
		panic(fmt.Sprintf("ruletree: bad config %+v", cfg))
	}
	disc := feature.FitDiscretizer(m, cfg.Bins)
	binned := disc.Transform(m)
	t := &Tree{Algo: cfg.Algorithm, Disc: disc, Features: m.Cols}
	idx := make([]int, m.Rows)
	for i := range idx {
		idx[i] = i
	}
	b := &builder{cfg: cfg, data: binned, labels: labels}
	t.Root = b.build(idx, 0)
	if cfg.Algorithm == C50 && cfg.PruneZ > 0 {
		prune(t.Root, cfg.PruneZ)
	}
	return t
}

type builder struct {
	cfg    Config
	data   *feature.Binned
	labels []bool
}

func (b *builder) leaf(idx []int) *Node {
	pos := 0
	for _, i := range idx {
		if b.labels[i] {
			pos++
		}
	}
	return &Node{
		Leaf: true,
		N:    len(idx),
		Pos:  pos,
		Prob: (float64(pos) + 1) / (float64(len(idx)) + 2),
	}
}

func entropy(pos, n int) float64 {
	if n == 0 || pos == 0 || pos == n {
		return 0
	}
	p := float64(pos) / float64(n)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func (b *builder) build(idx []int, depth int) *Node {
	node := b.leaf(idx)
	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf || node.Pos == 0 || node.Pos == node.N {
		return node
	}
	switch b.cfg.Algorithm {
	case ID3:
		return b.buildID3(idx, depth, node)
	case C50:
		return b.buildC50(idx, depth, node)
	default:
		panic("ruletree: unknown algorithm")
	}
}

// buildID3 chooses the feature with maximum information gain and splits
// multiway, one child per bin value.
func (b *builder) buildID3(idx []int, depth int, asLeaf *Node) *Node {
	base := entropy(asLeaf.Pos, asLeaf.N)
	bestCol, bestGain := -1, 1e-9
	var counts [256][2]int
	for col := 0; col < b.data.Cols; col++ {
		nb := b.data.NumBins[col]
		if nb < 2 {
			continue
		}
		for v := 0; v < nb; v++ {
			counts[v][0], counts[v][1] = 0, 0
		}
		for _, i := range idx {
			v := b.data.At(i, col)
			if b.labels[i] {
				counts[v][1]++
			} else {
				counts[v][0]++
			}
		}
		cond := 0.0
		for v := 0; v < nb; v++ {
			n := counts[v][0] + counts[v][1]
			if n == 0 {
				continue
			}
			cond += float64(n) / float64(len(idx)) * entropy(counts[v][1], n)
		}
		if gain := base - cond; gain > bestGain {
			bestGain, bestCol = gain, col
		}
	}
	if bestCol < 0 {
		return asLeaf
	}
	nb := b.data.NumBins[bestCol]
	parts := make([][]int, nb)
	for _, i := range idx {
		v := b.data.At(i, bestCol)
		parts[v] = append(parts[v], i)
	}
	node := &Node{Col: bestCol, N: asLeaf.N, Pos: asLeaf.Pos, Children: make([]*Node, nb)}
	nonEmpty := 0
	for v, part := range parts {
		if len(part) == 0 {
			// Empty branch inherits the parent's distribution.
			node.Children[v] = asLeaf
			continue
		}
		nonEmpty++
		if len(part) < b.cfg.MinLeaf {
			node.Children[v] = b.leaf(part)
		} else {
			node.Children[v] = b.build(part, depth+1)
		}
	}
	if nonEmpty < 2 {
		return asLeaf
	}
	return node
}

// buildC50 chooses a binary threshold split by gain ratio, restricted (as
// in Quinlan's C4.5) to candidates whose raw information gain is at least
// the average positive gain - without that constraint gain ratio favours
// degenerate near-empty splits whose split info approaches zero.
func (b *builder) buildC50(idx []int, depth int, asLeaf *Node) *Node {
	base := entropy(asLeaf.Pos, asLeaf.N)
	total := len(idx)
	type cand struct {
		col, thr    int
		gain, ratio float64
	}
	var cands []cand
	var gainSum float64
	var cum [256][2]int
	for col := 0; col < b.data.Cols; col++ {
		nb := b.data.NumBins[col]
		if nb < 2 {
			continue
		}
		for v := 0; v < nb; v++ {
			cum[v][0], cum[v][1] = 0, 0
		}
		for _, i := range idx {
			v := b.data.At(i, col)
			if b.labels[i] {
				cum[v][1]++
			} else {
				cum[v][0]++
			}
		}
		// Prefix sums turn threshold evaluation into O(bins); keep the
		// best candidate per column.
		leftN, leftPos := 0, 0
		best := cand{col: -1}
		for thr := 0; thr < nb-1; thr++ {
			leftN += cum[thr][0] + cum[thr][1]
			leftPos += cum[thr][1]
			rightN := total - leftN
			rightPos := asLeaf.Pos - leftPos
			if leftN < b.cfg.MinLeaf || rightN < b.cfg.MinLeaf {
				continue
			}
			cond := float64(leftN)/float64(total)*entropy(leftPos, leftN) +
				float64(rightN)/float64(total)*entropy(rightPos, rightN)
			gain := base - cond
			if gain <= 1e-12 {
				continue
			}
			pl := float64(leftN) / float64(total)
			si := -pl*math.Log2(pl) - (1-pl)*math.Log2(1-pl)
			if si < 1e-9 {
				continue
			}
			if ratio := gain / si; best.col < 0 || ratio > best.ratio {
				best = cand{col: col, thr: thr, gain: gain, ratio: ratio}
			}
		}
		if best.col >= 0 {
			cands = append(cands, best)
			gainSum += best.gain
		}
	}
	if len(cands) == 0 {
		return asLeaf
	}
	avgGain := gainSum / float64(len(cands))
	bestCol, bestThr, bestRatio := -1, 0, -1.0
	for _, c := range cands {
		if c.gain+1e-12 >= 0.5*avgGain && c.ratio > bestRatio {
			bestCol, bestThr, bestRatio = c.col, c.thr, c.ratio
		}
	}
	if bestCol < 0 {
		return asLeaf
	}
	var left, right []int
	for _, i := range idx {
		if int(b.data.At(i, bestCol)) <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &Node{
		Col: bestCol, Thr: uint8(bestThr), N: asLeaf.N, Pos: asLeaf.Pos,
		Left:  b.build(left, depth+1),
		Right: b.build(right, depth+1),
	}
}

// prune applies C4.5 pessimistic pruning bottom-up: a subtree is replaced
// by a leaf when the leaf's upper-confidence error bound does not exceed
// the subtree's.
func prune(n *Node, z float64) float64 {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return ucbError(n.N-maxInt(n.Pos, n.N-n.Pos), n.N, z) * float64(n.N)
	}
	var subtreeErr float64
	if n.Children != nil {
		for _, c := range n.Children {
			if c != n { // empty branches alias the parent's leaf snapshot
				subtreeErr += prune(c, z)
			}
		}
	} else {
		subtreeErr = prune(n.Left, z) + prune(n.Right, z)
	}
	leafMis := n.N - maxInt(n.Pos, n.N-n.Pos)
	leafErr := ucbError(leafMis, n.N, z) * float64(n.N)
	if leafErr <= subtreeErr+1e-12 {
		// Collapse to a leaf.
		n.Leaf = true
		n.Children, n.Left, n.Right = nil, nil, nil
		n.Prob = (float64(n.Pos) + 1) / (float64(n.N) + 2)
		return leafErr
	}
	return subtreeErr
}

// ucbError is the upper confidence bound of the true error rate given mis
// errors in n trials (Wilson-style, as in C4.5).
func ucbError(mis, n int, z float64) float64 {
	if n == 0 {
		return 1
	}
	f := float64(mis) / float64(n)
	nf := float64(n)
	z2 := z * z
	num := f + z2/(2*nf) + z*math.Sqrt(f*(1-f)/nf+z2/(4*nf*nf))
	return num / (1 + z2/nf)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Score returns the leaf fraud probability for a raw feature vector.
func (t *Tree) Score(x []float64) float64 {
	if len(x) != t.Features {
		panic(fmt.Sprintf("ruletree: input has %d features, model wants %d", len(x), t.Features))
	}
	n := t.Root
	for !n.Leaf {
		bin := t.Disc.Bin(n.Col, x[n.Col])
		if n.Children != nil {
			if bin >= len(n.Children) {
				bin = len(n.Children) - 1
			}
			n = n.Children[bin]
		} else if bin <= int(n.Thr) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Prob
}

// ScoreBatch implements model.BatchScorer: the batch is discretised once
// up front (Score re-bins the visited columns on every call), then each
// row walks the tree over its pre-binned values. The walk visits the same
// nodes as Score, so scores are bitwise identical.
func (t *Tree) ScoreBatch(dst []float64, m *feature.Matrix) {
	if m.Cols != t.Features {
		panic(fmt.Sprintf("ruletree: matrix has %d features, model wants %d", m.Cols, t.Features))
	}
	// A tree trained with more than 256 bins per column cannot use the
	// byte-packed batch binning (Transform would panic); fall back to the
	// scalar walk rather than let a serving request crash.
	if !t.Disc.BytePackable() {
		for i := 0; i < m.Rows; i++ {
			dst[i] = t.Score(m.Row(i))
		}
		return
	}
	binned := t.Disc.Transform(m)
	for i := 0; i < m.Rows; i++ {
		bins := binned.Row(i)
		n := t.Root
		for !n.Leaf {
			bin := int(bins[n.Col])
			if n.Children != nil {
				if bin >= len(n.Children) {
					bin = len(n.Children) - 1
				}
				n = n.Children[bin]
			} else if bin <= int(n.Thr) {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		dst[i] = n.Prob
	}
}

// NumFeatures implements model.Classifier.
func (t *Tree) NumFeatures() int { return t.Features }

// Depth returns the maximum depth of the tree (leaves at depth 0 for a
// stump).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil || n.Leaf {
		return 0
	}
	d := 0
	if n.Children != nil {
		for _, c := range n.Children {
			if dc := depth(c); dc > d {
				d = dc
			}
		}
	} else {
		if dl := depth(n.Left); dl > d {
			d = dl
		}
		if dr := depth(n.Right); dr > d {
			d = dr
		}
	}
	return d + 1
}

// NumLeaves counts the leaves (rules) in the tree.
func (t *Tree) NumLeaves() int { return leaves(t.Root) }

func leaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	total := 0
	if n.Children != nil {
		for _, c := range n.Children {
			total += leaves(c)
		}
	} else {
		total = leaves(n.Left) + leaves(n.Right)
	}
	return total
}
