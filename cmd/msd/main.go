// Command msd is the standalone Model Server daemon: it loads a model
// bundle from disk — a v1 single classifier or a v2 ensemble built by
// `titant train` — and serves the v1 scoring API against an existing
// feature store. Ensemble bundles score through the batch-native runtime
// with per-member scores on /v1/score. Models hot-swap over the wire
// (POST /v1/models with an encoded bundle) or from the bundle file
// (POST /reload, kept as a deprecated alias); the daemon drains in-flight
// requests and exits cleanly on SIGINT/SIGTERM.
//
// Usage:
//
//	msd -bundle bundle.bin -data /var/lib/titant/hbase [-addr :8070] [-workers N] [-strict] [-model-token T]
//	    [-usercache N] [-stream] [-stream-shards N] [-stream-buckets N] [-stream-bucket-secs N]
//	    [-policy default|file.json] [-shadow-bundle file.bin] [-shadow-queue N] [-drift]
//	    [-eventlog DIR] [-eventlog-fsync D] [-eventlog-segment-mb N] [-eventlog-snapshot-every N]
//	    [-pprof ADDR]
//
// The bundle file is produced by the offline pipeline (see cmd/titant
// serve for an all-in-one variant, or core.Deploy + Bundle.Encode in
// library code).
//
// By default the daemon maintains a streaming aggregate window fed by
// POST /v1/ingest. The window starts cold: scoring serves the bundle's
// frozen city table until the window has absorbed a warm-up quota of
// traffic (and, past that, for any city with no in-window activity),
// then tracks live statistics — so a fresh daemon behaves exactly like
// the T+1 path until it has seen enough real traffic to trust.
//
// With -eventlog DIR every accepted ingest is appended to a durable
// segmented log before it mutates the window, and derived state
// (window, drift baselines, shadow meter, negative-cache keys) is
// snapshotted periodically. On startup the daemon loads the newest
// snapshot and replays the log tail, rebuilding the exact pre-crash
// state; inspect or compact a log directory offline with
// `titant logctl`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"titant/internal/decision"
	"titant/internal/eventlog"
	"titant/internal/feature/stream"
	"titant/internal/hbase"
	"titant/internal/ms"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

func main() {
	bundlePath := flag.String("bundle", "", "path to an encoded model bundle (required)")
	dataDir := flag.String("data", "", "feature store directory (required)")
	addr := flag.String("addr", ":8070", "listen address")
	workers := flag.Int("workers", 0, "batch fan-out width (0 = GOMAXPROCS)")
	strict := flag.Bool("strict", false, "reject transactions naming users absent from the store (404)")
	userCache := flag.Int("usercache", ms.DefaultUserCacheSize, "read-through user cache entries (0 = disabled)")
	token := flag.String("model-token", "", "bearer token guarding POST /v1/models and /v1/policy (empty = open)")
	policySpec := flag.String("policy", "", `decision policy: "default" (derived from the bundle threshold), a policy JSON file path, or "" to disable /v1/decide`)
	shadowPath := flag.String("shadow-bundle", "", "challenger bundle file scored in shadow (empty = no shadow)")
	shadowQueue := flag.Int("shadow-queue", 0, "shadow queue capacity (0 = default)")
	drift := flag.Bool("drift", true, "monitor per-member score drift (PSI/KS) against a deploy-time baseline")
	streaming := flag.Bool("stream", true, "maintain a live aggregate window (POST /v1/ingest)")
	ingestToken := flag.String("ingest-token", "", "bearer token guarding POST /v1/ingest[/batch] (empty = open)")
	streamShards := flag.Int("stream-shards", 0, "stream store lock stripes (0 = default)")
	streamBuckets := flag.Int("stream-buckets", 0, "stream window ring buckets (0 = default, 90)")
	streamBucketSecs := flag.Int64("stream-bucket-secs", 0, "stream bucket width in seconds (0 = default, 1 day)")
	elogDir := flag.String("eventlog", "", "durable event log directory: log-then-apply ingest with crash recovery (empty = disabled)")
	elogFsync := flag.Duration("eventlog-fsync", 0, "event log group-commit fsync interval (0 = default, 50ms)")
	elogSegMB := flag.Int64("eventlog-segment-mb", 0, "event log segment rotation size in MiB (0 = default, 64)")
	elogSnapEvery := flag.Int64("eventlog-snapshot-every", 0, "log events between derived-state snapshots (0 = default, 65536; negative disables)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
	flag.Parse()
	if *bundlePath == "" || *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		bound, err := telemetry.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatalf("msd: pprof: %v", err)
		}
		log.Printf("msd: pprof listening on %s (GET /debug/pprof/)", bound)
	}
	raw, err := os.ReadFile(*bundlePath)
	if err != nil {
		log.Fatalf("msd: read bundle: %v", err)
	}
	bundle, err := ms.DecodeBundle(raw)
	if err != nil {
		log.Fatalf("msd: decode bundle: %v", err)
	}
	logBundle(bundle)
	tab, err := hbase.Open(hbase.Config{Dir: *dataDir})
	if err != nil {
		log.Fatalf("msd: open feature store: %v", err)
	}
	defer tab.Close()

	opts := []ms.Option{
		ms.WithAlert(func(t *txn.Transaction, score float64) {
			log.Printf("ALERT txn=%d score=%.3f from=%d to=%d", t.ID, score, t.From, t.To)
		}),
		ms.WithWorkers(*workers),
		ms.WithModelToken(*token),
		ms.WithIngestToken(*ingestToken),
		ms.WithUserCache(*userCache),
	}
	if *strict {
		opts = append(opts, ms.WithStrictUsers())
	}
	if *policySpec != "" {
		var pol *decision.Policy
		if *policySpec == "default" {
			pol = decision.Default(bundle.Version, bundle.Threshold)
		} else {
			raw, err := os.ReadFile(*policySpec)
			if err != nil {
				log.Fatalf("msd: read policy: %v", err)
			}
			if pol, err = decision.Parse(raw); err != nil {
				log.Fatalf("msd: %v", err)
			}
		}
		opts = append(opts, ms.WithPolicy(pol))
		log.Printf("msd: decision policy %s loaded (POST /v1/decide enabled)", pol.Version)
	}
	if *shadowPath != "" {
		raw, err := os.ReadFile(*shadowPath)
		if err != nil {
			log.Fatalf("msd: read shadow bundle: %v", err)
		}
		challenger, err := ms.DecodeBundle(raw)
		if err != nil {
			log.Fatalf("msd: decode shadow bundle: %v", err)
		}
		opts = append(opts, ms.WithShadow(challenger), ms.WithShadowQueue(*shadowQueue))
		log.Printf("msd: shadow challenger %s (%d member(s))", challenger.Version, challenger.NumMembers())
	}
	if *drift {
		opts = append(opts, ms.WithDriftMonitor(decision.DriftConfig{}))
	}
	if *streaming {
		st := stream.New(
			stream.WithShards(*streamShards),
			stream.WithWindow(*streamBuckets, *streamBucketSecs),
			stream.WithCities(len(bundle.City.Fraud)))
		opts = append(opts, ms.WithStreamAggregates(st))
		log.Printf("msd: live aggregate window: %d buckets x %ds over %d shards (cold start, frozen-table fallback)",
			st.Buckets(), st.BucketSeconds(), st.Shards())
	}
	if *elogDir != "" {
		var eopts []eventlog.Option
		if *elogFsync > 0 {
			eopts = append(eopts, eventlog.WithFsyncInterval(*elogFsync))
		}
		if *elogSegMB > 0 {
			eopts = append(eopts, eventlog.WithSegmentBytes(*elogSegMB<<20))
		}
		opts = append(opts, ms.WithEventLog(*elogDir, eopts...))
		if *elogSnapEvery != 0 {
			opts = append(opts, ms.WithSnapshotEvery(*elogSnapEvery))
		}
	}
	srv, err := ms.New(tab, bundle, opts...)
	if err != nil {
		log.Fatalf("msd: %v", err)
	}
	defer srv.Close()
	if *elogDir != "" {
		log.Printf("msd: event log %s: replayed %d records, next offset %d",
			*elogDir, srv.EventLogReplayed(), srv.EventLogStats().NextOffset)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	// Deprecated: POST /v1/models swaps a bundle over the wire; /reload
	// re-reads the bundle file for callers of the pre-v1 daemon.
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		// Same guard as POST /v1/models — an unguarded alias would let
		// anyone revert the live model to the on-disk bundle.
		if *token != "" && !ms.CheckBearer(r, *token) {
			http.Error(w, "model reload requires a valid bearer token", http.StatusUnauthorized)
			return
		}
		raw, err := os.ReadFile(*bundlePath)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		nb, err := ms.DecodeBundle(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := srv.SetBundle(nb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		logBundle(nb)
		fmt.Fprintf(w, "reloaded version=%s\n", nb.Version)
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("msd: serving %s on %s (model version %s)", *dataDir, *addr, bundle.Version)
	if err := ms.ListenAndServe(ctx, *addr, mux); err != nil {
		log.Fatal(err)
	}
	log.Printf("msd: shut down cleanly")
}

// logBundle describes the loaded bundle: one line for a v1 single model,
// member-per-line detail for a v2 ensemble.
func logBundle(b *ms.Bundle) {
	if len(b.Members) == 0 {
		log.Printf("msd: bundle %s: single model, threshold %.4f, embedding dim %d",
			b.Version, b.Threshold, b.EmbeddingDim)
		return
	}
	log.Printf("msd: bundle %s: %d-member ensemble (combiner %s), threshold %.4f, embedding dim %d",
		b.Version, len(b.Members), b.Combine, b.Threshold, b.EmbeddingDim)
	for i := range b.Members {
		m := &b.Members[i]
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		log.Printf("msd:   member %-8s weight %.2f threshold %.4f (%d bytes)",
			m.Name, w, m.Threshold, len(m.ModelBytes))
	}
}
