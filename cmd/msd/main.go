// Command msd is the standalone Model Server daemon: it loads a model
// bundle from disk and serves scoring requests against an existing feature
// store, with hot reload on SIGHUP-like POST /reload.
//
// Usage:
//
//	msd -bundle bundle.bin -data /var/lib/titant/hbase [-addr :8070]
//
// The bundle file is produced by the offline pipeline (see cmd/titant
// serve for an all-in-one variant, or core.Deploy + Bundle.Encode in
// library code).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"titant/internal/hbase"
	"titant/internal/ms"
	"titant/internal/txn"
)

func main() {
	bundlePath := flag.String("bundle", "", "path to an encoded model bundle (required)")
	dataDir := flag.String("data", "", "feature store directory (required)")
	addr := flag.String("addr", ":8070", "listen address")
	flag.Parse()
	if *bundlePath == "" || *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*bundlePath)
	if err != nil {
		log.Fatalf("msd: read bundle: %v", err)
	}
	bundle, err := ms.DecodeBundle(raw)
	if err != nil {
		log.Fatalf("msd: decode bundle: %v", err)
	}
	tab, err := hbase.Open(hbase.Config{Dir: *dataDir})
	if err != nil {
		log.Fatalf("msd: open feature store: %v", err)
	}
	defer tab.Close()

	srv, err := ms.NewServer(tab, bundle, func(t *txn.Transaction, score float64) {
		log.Printf("ALERT txn=%d score=%.3f from=%d to=%d", t.ID, score, t.From, t.To)
	})
	if err != nil {
		log.Fatalf("msd: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		raw, err := os.ReadFile(*bundlePath)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		nb, err := ms.DecodeBundle(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := srv.SetBundle(nb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "reloaded version=%s\n", nb.Version)
	})
	log.Printf("msd: serving %s on %s (model version %s)", *dataDir, *addr, bundle.Version)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
