package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"titant"
	"titant/internal/faultinject"
	"titant/internal/loadgen"
	"titant/internal/router"
	"titant/internal/txn"
)

// servingFleet is the trained, deployed state every in-process loadgen
// mode serves from: the composed world and its ground-truth manifest,
// the model bundle, and one feature table per shard.
type servingFleet struct {
	world     *titant.World
	man       *titant.WorldManifest
	network   []txn.Transaction
	bundle    *titant.Bundle
	tabs      []*titant.FeatureTable
	opts      titant.Options
	threshold float64
	version   string
	cleanup   func()
}

// composeAndDeploy builds the scenario world, trains the requested
// ensemble and uploads it across shards feature tables in a temp dir.
func composeAndDeploy(users int, seed uint64, shards int, detectors, combineName string, fast bool) (*servingFleet, error) {
	wcfg := titant.DefaultWorldConfig()
	if users > 0 {
		wcfg.Users = users
	}
	if seed > 0 {
		wcfg.Seed = seed
	}
	w, man := titant.ComposeWorld(wcfg, titant.DefaultScenarioMix())
	ds, err := w.Dataset(1)
	if err != nil {
		return nil, err
	}
	dets, err := parseDetectors(detectors)
	if err != nil {
		return nil, err
	}
	combine, err := titant.ParseCombiner(combineName)
	if err != nil {
		return nil, err
	}
	opts := titant.DefaultOptions()
	if fast {
		opts.GBDT.Trees = 40
		opts.LR.Iterations = 5
		opts.DW.WalksPerNode = 3
		opts.S2V.Epochs = 2
	}
	log.Printf("composing scenario world (%d users, seed %d): %d labeled scenarios", wcfg.Users, wcfg.Seed, len(man.Scenarios))
	log.Printf("training %d-member ensemble (%s, combiner %s)...", len(dets), detectors, combine)
	members, emb, threshold, err := titant.TrainEnsembleForServing(w.Users, ds, dets, combine, opts)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	dir, err := os.MkdirTemp("", "titant-loadgen-*")
	if err != nil {
		return nil, err
	}
	rmdir := func() { os.RemoveAll(dir) }
	tabs := make([]*titant.FeatureTable, shards)
	closeTabs := func() {
		for _, tb := range tabs {
			if tb != nil {
				tb.Close()
			}
		}
	}
	for i := range tabs {
		sd := dir
		if shards > 1 {
			sd = filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
		}
		if tabs[i], err = titant.OpenFeatureTable(sd); err != nil {
			closeTabs()
			rmdir()
			return nil, err
		}
	}
	version := "loadgen-" + time.Now().Format("2006-01-02T15:04:05")
	log.Printf("uploading %d users to the feature store (%d shard(s))...", len(w.Users), shards)
	bundle, err := titant.DeployEnsembleTo(w.Users, ds, emb, members, combine, threshold, opts,
		titant.NewShardedUploader(tabs, 0), version)
	if err != nil {
		closeTabs()
		rmdir()
		return nil, err
	}
	return &servingFleet{
		world: w, man: man, network: ds.Network,
		bundle: bundle, tabs: tabs, opts: opts,
		threshold: threshold, version: version,
		cleanup: func() { closeTabs(); rmdir() },
	}, nil
}

// engineOpts assembles one engine's options: policy enabled, a fresh
// stream window warmed from the reference network, admission from the
// CLI flags. Each call builds its own stream store, so every chaos
// shard carries the full aggregate state — replicated warmup keeps a
// shard's verdicts identical to a single engine's.
func (f *servingFleet) engineOpts(quota float64, burst, maxInflight int) []titant.EngineOption {
	st := titant.NewStreamStore(titant.WithStreamCities(f.opts.Cities))
	st.IngestBatch(f.network)
	engOpts := []titant.EngineOption{
		titant.WithPolicy(titant.DefaultPolicy(f.version, f.threshold)),
		titant.WithStreamAggregates(st),
	}
	if quota > 0 {
		if burst <= 0 {
			burst = int(2 * quota)
		}
		engOpts = append(engOpts, titant.WithCallerQuota(quota, burst))
	}
	if maxInflight > 0 {
		engOpts = append(engOpts, titant.WithMaxInflight(maxInflight))
	}
	return engOpts
}

// chaosFleet is the -chaos harness: shard servers on loopback
// listeners, a resilient router in front, and the scripted fault
// transport wedged between them.
type chaosFleet struct {
	routerURL string
	scenario  *faultinject.Scenario
	tr        *faultinject.Transport
	client    *http.Client
	closeOnce sync.Once
	closers   []func()
}

func (c *chaosFleet) cleanup() {
	c.closeOnce.Do(func() {
		for i := len(c.closers) - 1; i >= 0; i-- {
			c.closers[i]()
		}
	})
}

// serveLoopback serves h on an ephemeral loopback port and returns its
// base URL plus a closer.
func serveLoopback(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// buildChaosFleet stands up the in-process wire fleet for a chaos run:
// shards shard servers (each a full engine over its slice of the
// feature store), a router carrying the resilience plane, and the
// seeded fault scenario injected into the router's transport. The
// labeled replay and manifest land in cfg for detection grading.
func buildChaosFleet(cfg *loadgen.Config, scenarioPath string, shards, users int, seed uint64,
	detectors, combineName string, fast bool, quota float64, burst, maxInflight int,
	runDur time.Duration, routerSeed uint64) (*chaosFleet, error) {
	raw, err := os.ReadFile(scenarioPath)
	if err != nil {
		return nil, err
	}
	sc, err := faultinject.ParseScenario(raw)
	if err != nil {
		return nil, err
	}
	if shards < 2 {
		return nil, fmt.Errorf("-chaos needs -shards >= 2 (a fleet with nothing to lose proves nothing)")
	}
	for i, r := range sc.Rules {
		if r.Shard >= shards {
			return nil, fmt.Errorf("scenario rule %d targets shard %d of a %d-shard fleet", i, r.Shard, shards)
		}
		if r.EndMs > 0 && time.Duration(r.EndMs)*time.Millisecond > runDur {
			log.Printf("warning: rule %d window closes at %dms, after the %s run — its recovery will not be observed", i, r.EndMs, runDur)
		}
	}

	f, err := composeAndDeploy(users, seed, shards, detectors, combineName, fast)
	if err != nil {
		return nil, err
	}
	c := &chaosFleet{scenario: sc}
	c.closers = append(c.closers, f.cleanup)
	ok := false
	defer func() {
		if !ok {
			c.cleanup()
		}
	}()

	urls := make([]string, shards)
	for i := range urls {
		eng, err := titant.NewEngine(f.tabs[i], f.bundle, f.engineOpts(quota, burst, maxInflight)...)
		if err != nil {
			return nil, err
		}
		c.closers = append(c.closers, eng.Close)
		url, closeSrv, err := serveLoopback(eng.Handler())
		if err != nil {
			return nil, err
		}
		c.closers = append(c.closers, closeSrv)
		urls[i] = url
	}

	// Generous keep-alive pools on both hops: at load-test rates the
	// default transports redial constantly, and the churn costs more
	// than the requests.
	wire := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 128}
	c.closers = append(c.closers, wire.CloseIdleConnections)
	c.tr = faultinject.NewTransport(wire, sc, faultinject.ShardByHost(urls))
	rt, err := router.New(urls,
		router.WithTransport(c.tr),
		router.WithTimeout(250*time.Millisecond),
		router.WithBreaker(router.BreakerConfig{Cooldown: 500 * time.Millisecond}),
		router.WithSeed(routerSeed),
	)
	if err != nil {
		return nil, err
	}
	c.routerURL, err = func() (string, error) {
		url, closeSrv, err := serveLoopback(rt.Handler())
		if err != nil {
			return "", err
		}
		c.closers = append(c.closers, closeSrv)
		return url, nil
	}()
	if err != nil {
		return nil, err
	}
	clientSide := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 256}
	c.closers = append(c.closers, clientSide.CloseIdleConnections)
	c.client = &http.Client{Transport: clientSide}

	cfg.Replay = testWindow(f.world.Log)
	cfg.Manifest = f.man
	cfg.Shards = shards
	c.tr.Start(time.Now())
	ok = true
	return c, nil
}

// disruptive reports whether a rule's fault class should trip a
// breaker when it fires on every matched request.
func disruptive(r *faultinject.Rule) bool {
	switch r.Kind {
	case faultinject.KindBlackhole, faultinject.KindReset, faultinject.KindDropResponse:
		return true
	case faultinject.KindHTTPError:
		return r.Status == 0 || r.Status >= 500
	}
	return false
}

// check grades the chaos run's resilience lifecycle after the load
// report is in: every scripted rule must have fired, and for each
// deterministic disruptive rule the target shard's breaker must have
// opened — and, when the rule's window closed comfortably inside the
// run, half-opened and closed again. A violation fails the run.
func (c *chaosFleet) check(runDur time.Duration) []string {
	var violations []string
	for i, st := range c.tr.Stats() {
		log.Printf("chaos rule %d: %s on shard %d fired %d times (%d delivered upstream)",
			i, st.Kind, st.Shard, st.Hits, st.Applied)
		if st.Hits == 0 {
			violations = append(violations, fmt.Sprintf("rule %d (%s, shard %d) never fired — the scenario did not exercise the fleet", i, st.Kind, st.Shard))
		}
	}

	resp, err := c.client.Get(c.routerURL + "/v1/stats")
	if err != nil {
		return append(violations, fmt.Sprintf("router stats unreachable: %v", err))
	}
	defer resp.Body.Close()
	var stats struct {
		Router struct {
			Breakers []struct {
				Shard     int    `json:"shard"`
				State     string `json:"state"`
				Opens     int64  `json:"opens"`
				HalfOpens int64  `json:"half_opens"`
				Probes    int64  `json:"probes"`
			} `json:"breakers"`
		} `json:"router"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return append(violations, fmt.Sprintf("router stats undecodable: %v", err))
	}
	byShard := map[int]int{}
	for i, b := range stats.Router.Breakers {
		byShard[b.Shard] = i
		log.Printf("breaker shard %d: state %s, opens %d, half-opens %d, probes %d",
			b.Shard, b.State, b.Opens, b.HalfOpens, b.Probes)
	}
	for i := range c.scenario.Rules {
		r := &c.scenario.Rules[i]
		if !disruptive(r) || (r.Prob > 0 && r.Prob < 1) || r.Shard < 0 {
			continue
		}
		bi, okSh := byShard[r.Shard]
		if !okSh {
			violations = append(violations, fmt.Sprintf("no breaker reported for shard %d", r.Shard))
			continue
		}
		b := stats.Router.Breakers[bi]
		if b.Opens == 0 {
			violations = append(violations, fmt.Sprintf("rule %d (%s) hit shard %d but its breaker never opened", i, r.Kind, r.Shard))
			continue
		}
		// The window closed at least a second before the run ended, so
		// the breaker had room to probe its way shut again.
		if r.EndMs > 0 && time.Duration(r.EndMs)*time.Millisecond <= runDur-time.Second {
			if b.HalfOpens == 0 || b.State != "closed" {
				violations = append(violations,
					fmt.Sprintf("shard %d revived at %dms but its breaker is %q (half-opens %d) — no recovery observed",
						r.Shard, r.EndMs, b.State, b.HalfOpens))
			}
		}
	}
	return violations
}

// chaosSummary is the stable one-line digest the CI smoke job compares
// across repeated runs.
func (c *chaosFleet) summary(rep *loadgen.Report) string {
	var fired []string
	for _, st := range c.tr.Stats() {
		fired = append(fired, fmt.Sprintf("%s@%d:%d", st.Kind, st.Shard, st.Hits))
	}
	return fmt.Sprintf("chaos: rules[%s] degraded=%d errors=%d", strings.Join(fired, " "), rep.Degraded, rep.Errors)
}
