package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"titant/internal/router"
)

// cmdRoute runs the stateless scatter/gather tier in front of a ring of
// shard servers (each a `titant serve` process). Single-transaction
// calls forward to the owner shard, batches scatter by user hash and
// gather in input order, model/policy swaps replicate to every shard,
// and /v1/stats and /healthz merge the fleet view. The router keeps no
// model or feature state: kill one and start another, the ring is the
// only configuration.
func cmdRoute(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address")
	shards := fs.String("shards", "", "comma-separated shard server base URLs, ring order (required; the order IS the hash ring)")
	timeout := fs.Duration("timeout", 0, "per-shard upstream request timeout (0 = default, 10s)")
	_ = fs.Parse(args)
	if *shards == "" {
		log.Fatal("route: -shards is required (comma-separated shard base URLs)")
	}
	var ring []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			ring = append(ring, s)
		}
	}
	var opts []router.Option
	if *timeout > 0 {
		opts = append(opts, router.WithTimeout(*timeout))
	}
	rt, err := router.New(ring, opts...)
	if err != nil {
		log.Fatalf("route: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("router listening on %s over %d shard(s): %s", *addr, rt.Shards(), strings.Join(ring, ", "))
	log.Printf("v1 API: POST /v1/score[/batch], /v1/decide[/batch], /v1/ingest[/batch] (scatter/gather); GET|POST /v1/models, /v1/policy (replicated); GET /v1/stats, /healthz (merged)")
	if err := rt.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
