package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"titant/internal/router"
)

// cmdRoute runs the stateless scatter/gather tier in front of a ring of
// shard servers (each a `titant serve` process). Single-transaction
// calls forward to the owner shard, batches scatter by user hash and
// gather in input order, model/policy swaps replicate to every shard,
// and /v1/stats and /healthz merge the fleet view. The router keeps no
// model or feature state: kill one and start another, the ring is the
// only configuration.
//
// The wire tier is where partial failure lives, so the router carries
// the resilience plane: per-request deadline budgets (X-Deadline-Ms),
// bounded retries with jittered backoff for idempotent calls, a circuit
// breaker per shard, optional tail-latency hedging for single-shard
// reads, and typed degraded answers (decide falls back to -fallback)
// when an owner shard is gone.
func cmdRoute(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address")
	shards := fs.String("shards", "", "comma-separated shard server base URLs, ring order (required; the order IS the hash ring)")
	timeout := fs.Duration("timeout", 0, "per-attempt upstream timeout (0 = default, 2s)")
	budget := fs.Duration("budget", 0, "server-side deadline budget per request, capping X-Deadline-Ms (0 = default, 10s)")
	retries := fs.Int("retries", -1, "retry budget for idempotent calls (-1 = default, 2; 0 disables)")
	backoff := fs.Duration("retry-backoff", 0, "base retry backoff, doubled per attempt with full jitter (0 = default, 25ms)")
	hedge := fs.Duration("hedge", 0, "hedge single-shard reads after this floor or the shard's observed p99 (0 = off)")
	fallback := fs.String("fallback", "review", "decide action when the owner shard is unavailable (fail-closed)")
	quorum := fs.Int("quorum", 0, "healthy shards needed for /healthz 200 (0 = majority)")
	brkFails := fs.Int("breaker-fails", 0, "consecutive upstream failures that open a shard's circuit (0 = default, 5)")
	brkCooldown := fs.Duration("breaker-cooldown", 0, "open-circuit cooldown before a half-open probe (0 = default, 1s)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
	_ = fs.Parse(args)
	startPprof(*pprofAddr)
	if *shards == "" {
		log.Fatal("route: -shards is required (comma-separated shard base URLs)")
	}
	var ring []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			ring = append(ring, s)
		}
	}
	opts := []router.Option{
		router.WithFallbackAction(*fallback),
		router.WithQuorum(*quorum),
		router.WithHedge(*hedge),
	}
	if *timeout > 0 {
		opts = append(opts, router.WithTimeout(*timeout))
	}
	if *budget > 0 {
		opts = append(opts, router.WithBudget(*budget, 0))
	}
	if *retries >= 0 {
		opts = append(opts, router.WithRetries(*retries, *backoff, 0))
	}
	if *brkFails > 0 || *brkCooldown > 0 {
		opts = append(opts, router.WithBreaker(router.BreakerConfig{
			ConsecutiveFails: *brkFails,
			Cooldown:         *brkCooldown,
		}))
	}
	rt, err := router.New(ring, opts...)
	if err != nil {
		log.Fatalf("route: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("router listening on %s over %d shard(s): %s", *addr, rt.Shards(), strings.Join(ring, ", "))
	log.Printf("v1 API: POST /v1/score[/batch], /v1/decide[/batch], /v1/ingest[/batch] (scatter/gather); GET|POST /v1/models, /v1/policy (replicated); GET /v1/stats, /healthz (merged)")
	if err := rt.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
