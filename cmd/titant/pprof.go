package main

import (
	"log"

	"titant/internal/telemetry"
)

// startPprof wires a -pprof flag: empty means off, anything else mounts
// the profiling listener or dies trying — a profiling flag that
// silently does nothing is worse than none.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	bound, err := telemetry.StartPprof(addr)
	if err != nil {
		log.Fatalf("pprof: %v", err)
	}
	log.Printf("pprof listening on %s (GET /debug/pprof/)", bound)
}
