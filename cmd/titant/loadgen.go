package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"titant"
	"titant/internal/loadgen"
	"titant/internal/txn"
)

// cmdLoadgen runs the open-loop load harness: scenario replay plus
// Zipf-distributed background traffic on a production-shaped arrival
// schedule, graded against the composed world's ground-truth manifest.
//
// Without -addr it builds the whole stack in process: compose the
// scenario world, train a bundle, deploy it to a temp feature store and
// drive the engine directly (admission control configured by -quota /
// -max-inflight). With -addr it drives a live server over the v1 JSON
// API; -replay and -manifest supply labeled traffic for detection
// grading (write them with `titant gen -scenarios`).
func cmdLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "drive a live server at this base URL (empty = in-process engine)")
	caller := fs.String("caller", "loadgen", "caller identity for per-caller quotas (X-Caller over HTTP)")
	scheduleName := fs.String("schedule", "constant", "arrival schedule: constant, diurnal or spike")
	rate := fs.Float64("rate", 300, "headline arrival rate, requests/second")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	loadSeed := fs.Uint64("load-seed", 7, "workload seed: same seed, same arrivals, ops and background traffic")
	loadUsers := fs.Int("load-users", 10000, "background user population (Zipf-distributed)")
	zipfS := fs.Float64("zipf", 1.07, "Zipf exponent of the background user mix")
	mixSpec := fs.String("opmix", "", `op weights "score:decide:ingest" (empty = 0.25:0.65:0.10)`)
	maxOut := fs.Int("max-outstanding", 0, "client-side concurrency cap (0 = 4096)")
	out := fs.String("out", "LOADGEN_report.json", "JSON report path")
	slo := fs.String("slo", "", "SLO gate JSON (max_p99_ms, max_error_rate, min_recall); violations fail the run")
	// In-process engine mode.
	users, seed := worldFlags(fs)
	shards := fs.Int("shards", 1, "in-process engine shards (users partitioned by consistent hash; ignored with -addr)")
	detectors := fs.String("detectors", "lr", "detectors for the in-process engine (several = ensemble)")
	combineName := fs.String("combine", "mean", "ensemble combiner when several detectors are named")
	fast := fs.Bool("fast", true, "reduced training budget for the in-process engine")
	quota := fs.Float64("quota", 0, "per-caller admission quota, requests/second (0 = unlimited)")
	burst := fs.Int("burst", 0, "quota burst size (0 = 2x quota, min 1)")
	maxInflight := fs.Int("max-inflight", 0, "shed load beyond this many admitted requests (0 = unlimited)")
	// HTTP-mode grading inputs.
	replayPath := fs.String("replay", "", "transaction log to replay labeled traffic from (HTTP mode)")
	manifestPath := fs.String("manifest", "", "scenario manifest JSON grading the replay (HTTP mode)")
	_ = fs.Parse(args)

	sched, err := loadgen.ParseSchedule(*scheduleName, *rate, *duration)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	mix, err := parseOpMix(*mixSpec)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	cfg := loadgen.Config{
		Schedule:       sched,
		Duration:       *duration,
		Seed:           *loadSeed,
		Mix:            mix,
		Users:          *loadUsers,
		ZipfS:          *zipfS,
		MaxOutstanding: *maxOut,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tgt loadgen.Target
	if *addr != "" {
		if err := loadHTTPReplay(&cfg, *replayPath, *manifestPath); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		base := strings.TrimRight(*addr, "/")
		tgt = &loadgen.HTTPTarget{BaseURL: base, Caller: *caller}
		// Record the serving width behind the URL: a router or sharded
		// server reports it on /v1/stats; anything else counts as 1.
		cfg.Shards = probeShards(base)
		log.Printf("driving %s: schedule %s, rate %.0f/s for %s (%d replay txns, %d shard(s))",
			*addr, sched.Name(), *rate, *duration, len(cfg.Replay), cfg.Shards)
	} else {
		eng, cleanup, err := buildLoadgenEngine(&cfg, *users, *seed, *shards, *detectors, *combineName,
			*fast, *quota, *burst, *maxInflight)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer cleanup()
		tgt = &loadgen.EngineTarget{Server: eng}
		ctx = titant.WithCallerContext(ctx, *caller)
		log.Printf("driving in-process engine: schedule %s, rate %.0f/s for %s (%d replay txns, %d shard(s), quota %.0f/s, max-inflight %d)",
			sched.Name(), *rate, *duration, len(cfg.Replay), cfg.Shards, *quota, *maxInflight)
	}

	rep, err := loadgen.Run(ctx, cfg, tgt)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	raw, err := rep.Encode()
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	printReport(rep, *out)
	if *slo != "" {
		gateRaw, err := os.ReadFile(*slo)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		gate, err := loadgen.ParseSLO(gateRaw)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		if violations := rep.CheckSLO(gate); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "SLO VIOLATION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("SLO gate %s: pass\n", *slo)
	}
}

// probeShards asks a live server how wide it is: GET /v1/stats carries
// a "shards" count on both the single server and the router's merged
// view. Unreachable or unparseable stats report as 1 — the probe is
// informational, not a gate.
func probeShards(base string) int {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return 1
	}
	defer resp.Body.Close()
	var body struct {
		Shards int `json:"shards"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil || body.Shards < 1 {
		return 1
	}
	return body.Shards
}

// parseOpMix parses "score:decide:ingest" weights; empty keeps the
// default mix.
func parseOpMix(spec string) (loadgen.OpMix, error) {
	if spec == "" {
		return loadgen.DefaultOpMix(), nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return loadgen.OpMix{}, fmt.Errorf("opmix %q: want three weights score:decide:ingest", spec)
	}
	var w [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return loadgen.OpMix{}, fmt.Errorf("opmix %q: %v", spec, err)
		}
		w[i] = v
	}
	return loadgen.OpMix{Score: w[0], Decide: w[1], Ingest: w[2]}, nil
}

// testWindow returns the labeled replay set: every transaction in the
// composed world's test window (the days after the training cut), where
// the manifests place the scenario fraud the harness grades recall on.
func testWindow(log []txn.Transaction) []txn.Transaction {
	cut := txn.Day(txn.NetworkDays + txn.TrainDays)
	var out []txn.Transaction
	for i := range log {
		if log[i].Day >= cut {
			out = append(out, log[i])
		}
	}
	return out
}

// loadHTTPReplay wires file-based replay and manifest into the config
// for HTTP mode. Both or neither must be given: replay without ground
// truth cannot be graded, a manifest without traffic grades nothing.
func loadHTTPReplay(cfg *loadgen.Config, replayPath, manifestPath string) error {
	if replayPath == "" && manifestPath == "" {
		return nil
	}
	if replayPath == "" || manifestPath == "" {
		return fmt.Errorf("-replay and -manifest go together (write both with `titant gen -scenarios`)")
	}
	f, err := os.Open(replayPath)
	if err != nil {
		return err
	}
	defer f.Close()
	all, err := txn.ReadLog(f)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	man, err := titant.DecodeWorldManifest(raw)
	if err != nil {
		return err
	}
	cfg.Replay = testWindow(all)
	cfg.Manifest = man
	return nil
}

// buildLoadgenEngine composes the scenario world, trains and deploys a
// bundle to a temp feature store, and assembles the in-process engine
// the harness drives: policy enabled (so decide traffic works), stream
// aggregates warmed from the reference window, admission control from
// the CLI flags. shards > 1 builds the consistent-hash sharded engine
// over a ring of shard tables — same API, horizontal scoring.
func buildLoadgenEngine(cfg *loadgen.Config, users int, seed uint64, shards int, detectors, combineName string,
	fast bool, quota float64, burst int, maxInflight int) (loadgen.Engine, func(), error) {
	wcfg := titant.DefaultWorldConfig()
	if users > 0 {
		wcfg.Users = users
	}
	if seed > 0 {
		wcfg.Seed = seed
	}
	w, man := titant.ComposeWorld(wcfg, titant.DefaultScenarioMix())
	ds, err := w.Dataset(1)
	if err != nil {
		return nil, nil, err
	}
	dets, err := parseDetectors(detectors)
	if err != nil {
		return nil, nil, err
	}
	combine, err := titant.ParseCombiner(combineName)
	if err != nil {
		return nil, nil, err
	}
	opts := titant.DefaultOptions()
	if fast {
		opts.GBDT.Trees = 40
		opts.LR.Iterations = 5
		opts.DW.WalksPerNode = 3
		opts.S2V.Epochs = 2
	}
	log.Printf("composing scenario world (%d users, seed %d): %d labeled scenarios", wcfg.Users, wcfg.Seed, len(man.Scenarios))
	log.Printf("training %d-member ensemble (%s, combiner %s)...", len(dets), detectors, combine)
	members, emb, threshold, err := titant.TrainEnsembleForServing(w.Users, ds, dets, combine, opts)
	if err != nil {
		return nil, nil, err
	}
	if shards < 1 {
		shards = 1
	}
	dir, err := os.MkdirTemp("", "titant-loadgen-*")
	if err != nil {
		return nil, nil, err
	}
	rmdir := func() { os.RemoveAll(dir) }
	tabs := make([]*titant.FeatureTable, shards)
	closeTabs := func() {
		for _, tb := range tabs {
			if tb != nil {
				tb.Close()
			}
		}
	}
	for i := range tabs {
		sd := dir
		if shards > 1 {
			sd = filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
		}
		if tabs[i], err = titant.OpenFeatureTable(sd); err != nil {
			closeTabs()
			rmdir()
			return nil, nil, err
		}
	}
	version := "loadgen-" + time.Now().Format("2006-01-02T15:04:05")
	log.Printf("uploading %d users to the feature store (%d shard(s))...", len(w.Users), shards)
	bundle, err := titant.DeployEnsembleTo(w.Users, ds, emb, members, combine, threshold, opts,
		titant.NewShardedUploader(tabs, 0), version)
	if err != nil {
		closeTabs()
		rmdir()
		return nil, nil, err
	}
	st := titant.NewStreamStore(titant.WithStreamCities(opts.Cities))
	st.IngestBatch(ds.Network)
	engOpts := []titant.EngineOption{
		titant.WithPolicy(titant.DefaultPolicy(version, threshold)),
		titant.WithStreamAggregates(st),
	}
	if quota > 0 {
		if burst <= 0 {
			burst = int(2 * quota)
		}
		engOpts = append(engOpts, titant.WithCallerQuota(quota, burst))
	}
	if maxInflight > 0 {
		engOpts = append(engOpts, titant.WithMaxInflight(maxInflight))
	}
	var eng loadgen.Engine
	var closeEng func()
	if shards > 1 {
		se, err := titant.NewShardedEngine(tabs, bundle, engOpts...)
		if err != nil {
			closeTabs()
			rmdir()
			return nil, nil, err
		}
		eng, closeEng = se, se.Close
	} else {
		e, err := titant.NewEngine(tabs[0], bundle, engOpts...)
		if err != nil {
			closeTabs()
			rmdir()
			return nil, nil, err
		}
		eng, closeEng = e, e.Close
	}
	cfg.Replay = testWindow(w.Log)
	cfg.Manifest = man
	cfg.Shards = shards
	return eng, func() { closeEng(); closeTabs(); rmdir() }, nil
}

// printReport summarises the run on stdout; the full report is in the
// JSON file.
func printReport(rep *loadgen.Report, out string) {
	fmt.Printf("schedule %s over %.1fs: offered %d (%.0f/s), completed %d (%.0f/s), shed %d, errors %d\n",
		rep.Schedule, rep.DurationSec, rep.Offered, rep.OfferedRPS, rep.Completed, rep.Throughput, rep.Shed, rep.Errors)
	fmt.Printf("latency from scheduled arrival: p50 %s  p99 %s  p999 %s  max %s\n",
		time.Duration(rep.Latency.P50)*time.Microsecond,
		time.Duration(rep.Latency.P99)*time.Microsecond,
		time.Duration(rep.Latency.P999)*time.Microsecond,
		time.Duration(rep.Latency.Max)*time.Microsecond)
	if rep.Replayed > 0 {
		fmt.Printf("detection over %d replayed txns: recall %.3f  precision %.3f  fpr %.3f\n",
			rep.Replayed, rep.Recall, rep.Precision, rep.FalsePositiveRate)
		for _, s := range rep.Scenarios {
			fmt.Printf("  %-13s replayed %4d  flagged %4d  shed %3d  recall %.3f\n",
				s.Kind, s.Replayed, s.Flagged, s.Shed, s.Recall)
		}
	}
	fmt.Printf("report written to %s\n", out)
}
