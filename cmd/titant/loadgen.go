package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"titant"
	"titant/internal/loadgen"
	"titant/internal/txn"
)

// cmdLoadgen runs the open-loop load harness: scenario replay plus
// Zipf-distributed background traffic on a production-shaped arrival
// schedule, graded against the composed world's ground-truth manifest.
//
// Without -addr it builds the whole stack in process: compose the
// scenario world, train a bundle, deploy it to a temp feature store and
// drive the engine directly (admission control configured by -quota /
// -max-inflight). With -addr it drives a live server over the v1 JSON
// API; -replay and -manifest supply labeled traffic for detection
// grading (write them with `titant gen -scenarios`).
func cmdLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "drive a live server at this base URL (empty = in-process engine)")
	caller := fs.String("caller", "loadgen", "caller identity for per-caller quotas (X-Caller over HTTP)")
	scheduleName := fs.String("schedule", "constant", "arrival schedule: constant, diurnal or spike")
	rate := fs.Float64("rate", 300, "headline arrival rate, requests/second")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	loadSeed := fs.Uint64("load-seed", 7, "workload seed: same seed, same arrivals, ops and background traffic")
	loadUsers := fs.Int("load-users", 10000, "background user population (Zipf-distributed)")
	zipfS := fs.Float64("zipf", 1.07, "Zipf exponent of the background user mix")
	mixSpec := fs.String("opmix", "", `op weights "score:decide:ingest" (empty = 0.25:0.65:0.10)`)
	maxOut := fs.Int("max-outstanding", 0, "client-side concurrency cap (0 = 4096)")
	out := fs.String("out", "LOADGEN_report.json", "JSON report path")
	slo := fs.String("slo", "", "SLO gate JSON (max_p99_ms, max_error_rate, min_recall); violations fail the run")
	// In-process engine mode.
	users, seed := worldFlags(fs)
	shards := fs.Int("shards", 1, "in-process engine shards (users partitioned by consistent hash; ignored with -addr)")
	detectors := fs.String("detectors", "lr", "detectors for the in-process engine (several = ensemble)")
	combineName := fs.String("combine", "mean", "ensemble combiner when several detectors are named")
	fast := fs.Bool("fast", true, "reduced training budget for the in-process engine")
	quota := fs.Float64("quota", 0, "per-caller admission quota, requests/second (0 = unlimited)")
	burst := fs.Int("burst", 0, "quota burst size (0 = 2x quota, min 1)")
	maxInflight := fs.Int("max-inflight", 0, "shed load beyond this many admitted requests (0 = unlimited)")
	// HTTP-mode grading inputs.
	replayPath := fs.String("replay", "", "transaction log to replay labeled traffic from (HTTP mode)")
	manifestPath := fs.String("manifest", "", "scenario manifest JSON grading the replay (HTTP mode)")
	// Chaos mode.
	chaosPath := fs.String("chaos", "", "fault scenario JSON: build an in-process wire fleet (-shards servers behind a resilient router) and inject the scripted faults; breaker lifecycle violations fail the run")
	chaosSeed := fs.Uint64("chaos-seed", 1, "router backoff-jitter seed for chaos runs")
	traceSample := fs.Int("trace-sample", 0, "keep the N slowest requests' trace IDs (X-Trace-Id) in the report; HTTP and chaos targets only")
	_ = fs.Parse(args)

	sched, err := loadgen.ParseSchedule(*scheduleName, *rate, *duration)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	mix, err := parseOpMix(*mixSpec)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	cfg := loadgen.Config{
		Schedule:       sched,
		Duration:       *duration,
		Seed:           *loadSeed,
		Mix:            mix,
		Users:          *loadUsers,
		ZipfS:          *zipfS,
		MaxOutstanding: *maxOut,
		TraceSample:    *traceSample,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tgt loadgen.Target
	var chaos *chaosFleet
	if *chaosPath != "" {
		if *addr != "" {
			log.Fatal("loadgen: -chaos builds its own in-process fleet; drop -addr")
		}
		chaos, err = buildChaosFleet(&cfg, *chaosPath, *shards, *users, *seed, *detectors, *combineName,
			*fast, *quota, *burst, *maxInflight, *duration, *chaosSeed)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer chaos.cleanup()
		tgt = &loadgen.HTTPTarget{BaseURL: chaos.routerURL, Caller: *caller, Client: chaos.client}
		log.Printf("driving chaos fleet at %s: %d shards, %d scripted rules, schedule %s, rate %.0f/s for %s (%d replay txns)",
			chaos.routerURL, cfg.Shards, len(chaos.scenario.Rules), sched.Name(), *rate, *duration, len(cfg.Replay))
	} else if *addr != "" {
		if err := loadHTTPReplay(&cfg, *replayPath, *manifestPath); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		base := strings.TrimRight(*addr, "/")
		tgt = &loadgen.HTTPTarget{BaseURL: base, Caller: *caller}
		// Record the serving width behind the URL: a router or sharded
		// server reports it on /v1/stats; anything else counts as 1.
		cfg.Shards = probeShards(base)
		log.Printf("driving %s: schedule %s, rate %.0f/s for %s (%d replay txns, %d shard(s))",
			*addr, sched.Name(), *rate, *duration, len(cfg.Replay), cfg.Shards)
	} else {
		eng, cleanup, err := buildLoadgenEngine(&cfg, *users, *seed, *shards, *detectors, *combineName,
			*fast, *quota, *burst, *maxInflight)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer cleanup()
		tgt = &loadgen.EngineTarget{Server: eng}
		ctx = titant.WithCallerContext(ctx, *caller)
		log.Printf("driving in-process engine: schedule %s, rate %.0f/s for %s (%d replay txns, %d shard(s), quota %.0f/s, max-inflight %d)",
			sched.Name(), *rate, *duration, len(cfg.Replay), cfg.Shards, *quota, *maxInflight)
	}

	rep, err := loadgen.Run(ctx, cfg, tgt)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	raw, err := rep.Encode()
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	printReport(rep, *out)
	if chaos != nil {
		violations := chaos.check(*duration)
		fmt.Println(chaos.summary(rep))
		if len(violations) > 0 {
			chaos.cleanup()
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "CHAOS VIOLATION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("chaos gate %s: pass\n", *chaosPath)
	}
	if *slo != "" {
		gateRaw, err := os.ReadFile(*slo)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		gate, err := loadgen.ParseSLO(gateRaw)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		if violations := rep.CheckSLO(gate); len(violations) > 0 {
			if chaos != nil {
				chaos.cleanup()
			}
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "SLO VIOLATION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("SLO gate %s: pass\n", *slo)
	}
}

// probeShards asks a live server how wide it is: GET /v1/stats carries
// a "shards" count on both the single server and the router's merged
// view. Unreachable or unparseable stats report as 1 — the probe is
// informational, not a gate.
func probeShards(base string) int {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return 1
	}
	defer resp.Body.Close()
	var body struct {
		Shards int `json:"shards"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil || body.Shards < 1 {
		return 1
	}
	return body.Shards
}

// parseOpMix parses "score:decide:ingest" weights; empty keeps the
// default mix.
func parseOpMix(spec string) (loadgen.OpMix, error) {
	if spec == "" {
		return loadgen.DefaultOpMix(), nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return loadgen.OpMix{}, fmt.Errorf("opmix %q: want three weights score:decide:ingest", spec)
	}
	var w [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return loadgen.OpMix{}, fmt.Errorf("opmix %q: %v", spec, err)
		}
		w[i] = v
	}
	return loadgen.OpMix{Score: w[0], Decide: w[1], Ingest: w[2]}, nil
}

// testWindow returns the labeled replay set: every transaction in the
// composed world's test window (the days after the training cut), where
// the manifests place the scenario fraud the harness grades recall on.
func testWindow(log []txn.Transaction) []txn.Transaction {
	cut := txn.Day(txn.NetworkDays + txn.TrainDays)
	var out []txn.Transaction
	for i := range log {
		if log[i].Day >= cut {
			out = append(out, log[i])
		}
	}
	return out
}

// loadHTTPReplay wires file-based replay and manifest into the config
// for HTTP mode. Both or neither must be given: replay without ground
// truth cannot be graded, a manifest without traffic grades nothing.
func loadHTTPReplay(cfg *loadgen.Config, replayPath, manifestPath string) error {
	if replayPath == "" && manifestPath == "" {
		return nil
	}
	if replayPath == "" || manifestPath == "" {
		return fmt.Errorf("-replay and -manifest go together (write both with `titant gen -scenarios`)")
	}
	f, err := os.Open(replayPath)
	if err != nil {
		return err
	}
	defer f.Close()
	all, err := txn.ReadLog(f)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	man, err := titant.DecodeWorldManifest(raw)
	if err != nil {
		return err
	}
	cfg.Replay = testWindow(all)
	cfg.Manifest = man
	return nil
}

// buildLoadgenEngine composes the scenario world, trains and deploys a
// bundle to a temp feature store, and assembles the in-process engine
// the harness drives: policy enabled (so decide traffic works), stream
// aggregates warmed from the reference window, admission control from
// the CLI flags. shards > 1 builds the consistent-hash sharded engine
// over a ring of shard tables — same API, horizontal scoring.
func buildLoadgenEngine(cfg *loadgen.Config, users int, seed uint64, shards int, detectors, combineName string,
	fast bool, quota float64, burst int, maxInflight int) (loadgen.Engine, func(), error) {
	if shards < 1 {
		shards = 1
	}
	f, err := composeAndDeploy(users, seed, shards, detectors, combineName, fast)
	if err != nil {
		return nil, nil, err
	}
	engOpts := f.engineOpts(quota, burst, maxInflight)
	var eng loadgen.Engine
	var closeEng func()
	if shards > 1 {
		se, err := titant.NewShardedEngine(f.tabs, f.bundle, engOpts...)
		if err != nil {
			f.cleanup()
			return nil, nil, err
		}
		eng, closeEng = se, se.Close
	} else {
		e, err := titant.NewEngine(f.tabs[0], f.bundle, engOpts...)
		if err != nil {
			f.cleanup()
			return nil, nil, err
		}
		eng, closeEng = e, e.Close
	}
	cfg.Replay = testWindow(f.world.Log)
	cfg.Manifest = f.man
	cfg.Shards = shards
	return eng, func() { closeEng(); f.cleanup() }, nil
}

// printReport summarises the run on stdout; the full report is in the
// JSON file.
func printReport(rep *loadgen.Report, out string) {
	fmt.Printf("schedule %s over %.1fs: offered %d (%.0f/s), completed %d (%.0f/s), shed %d, errors %d\n",
		rep.Schedule, rep.DurationSec, rep.Offered, rep.OfferedRPS, rep.Completed, rep.Throughput, rep.Shed, rep.Errors)
	fmt.Printf("latency from scheduled arrival: p50 %s  p99 %s  p999 %s  max %s\n",
		time.Duration(rep.Latency.P50)*time.Microsecond,
		time.Duration(rep.Latency.P99)*time.Microsecond,
		time.Duration(rep.Latency.P999)*time.Microsecond,
		time.Duration(rep.Latency.Max)*time.Microsecond)
	if rep.Replayed > 0 {
		fmt.Printf("detection over %d replayed txns: recall %.3f  precision %.3f  fpr %.3f\n",
			rep.Replayed, rep.Recall, rep.Precision, rep.FalsePositiveRate)
		for _, s := range rep.Scenarios {
			fmt.Printf("  %-13s replayed %4d  flagged %4d  shed %3d  recall %.3f\n",
				s.Kind, s.Replayed, s.Flagged, s.Shed, s.Recall)
		}
	}
	fmt.Printf("report written to %s\n", out)
}
