package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"titant"
	"titant/internal/ms"
	"titant/internal/router"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// cmdMetricsSmoke is the CI gate over the Prometheus surface: it boots
// an in-process sharded fleet (shard servers on loopback behind a
// router, same fixture as -chaos minus the faults), drives mixed
// traffic through the router so every hot-path series has samples, then
// scrapes /metrics from the router and every shard and holds the pages
// to three invariants:
//
//  1. every page passes the in-repo exposition linter (telemetry.Lint);
//  2. the router page carries every required serving family — the
//     /v1/stats counters and the stage histograms must all have a
//     Prometheus series, so a dashboard never needs the JSON endpoint;
//  3. the router's self-scrape is faithful: every series a shard emits
//     appears on the router page re-labeled with shard="<i>", and the
//     router invents no shard-labeled series outside its own
//     titant_router_* namespace.
//
// The scraped pages land in -out as the CI artifact; any violation
// exits non-zero.
func cmdMetricsSmoke(args []string) {
	fs := flag.NewFlagSet("metrics-smoke", flag.ExitOnError)
	users, seed := worldFlags(fs)
	shards := fs.Int("shards", 2, "shard servers behind the router")
	detectors := fs.String("detectors", "lr", "detectors for the fleet's ensemble")
	combineName := fs.String("combine", "mean", "ensemble combiner")
	fast := fs.Bool("fast", true, "reduced training budget")
	requests := fs.Int("requests", 200, "warm-up requests driven through the router before scraping")
	outDir := fs.String("out", "METRICS_scrape", "directory the scraped pages are written into (the CI artifact)")
	_ = fs.Parse(args)
	if *shards < 2 {
		log.Fatal("metrics-smoke: -shards must be >= 2 (the re-label diff needs a fleet)")
	}

	f, err := composeAndDeploy(*users, *seed, *shards, *detectors, *combineName, *fast)
	if err != nil {
		log.Fatalf("metrics-smoke: %v", err)
	}
	var closers []func()
	closers = append(closers, f.cleanup)
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	shardURLs := make([]string, *shards)
	for i := range shardURLs {
		eng, err := titant.NewEngine(f.tabs[i], f.bundle, f.engineOpts(0, 0, 0)...)
		if err != nil {
			log.Fatalf("metrics-smoke: shard %d: %v", i, err)
		}
		closers = append(closers, eng.Close)
		url, closeSrv, err := serveLoopback(eng.Handler())
		if err != nil {
			log.Fatalf("metrics-smoke: shard %d: %v", i, err)
		}
		closers = append(closers, closeSrv)
		shardURLs[i] = url
	}
	rt, err := router.New(shardURLs, router.WithSeed(1))
	if err != nil {
		log.Fatalf("metrics-smoke: %v", err)
	}
	routerURL, closeRt, err := serveLoopback(rt.Handler())
	if err != nil {
		log.Fatalf("metrics-smoke: %v", err)
	}
	closers = append(closers, closeRt)

	client := &http.Client{Timeout: 10 * time.Second}
	log.Printf("driving %d requests through the router at %s (%d shards)...", *requests, routerURL, *shards)
	if err := driveSmokeTraffic(client, routerURL, f.world.Log, *requests); err != nil {
		log.Fatalf("metrics-smoke: drive traffic: %v", err)
	}

	routerPage, err := scrapePage(client, routerURL)
	if err != nil {
		log.Fatalf("metrics-smoke: scrape router: %v", err)
	}
	shardPages := make([][]byte, *shards)
	for i, u := range shardURLs {
		if shardPages[i], err = scrapePage(client, u); err != nil {
			log.Fatalf("metrics-smoke: scrape shard %d: %v", i, err)
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("metrics-smoke: %v", err)
	}
	writeArtifact := func(name string, body []byte) {
		if err := os.WriteFile(filepath.Join(*outDir, name), body, 0o644); err != nil {
			log.Fatalf("metrics-smoke: %v", err)
		}
	}
	writeArtifact("router.prom", routerPage)
	for i, p := range shardPages {
		writeArtifact(fmt.Sprintf("shard-%d.prom", i), p)
	}
	log.Printf("scraped pages written to %s/", *outDir)

	violations := checkScrapes(routerPage, shardPages)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "METRICS VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	sc, _ := telemetry.ParseExpo(routerPage)
	fmt.Printf("metrics-smoke: pass (%d families, %d series on the router page; %d shards scraped)\n",
		len(sc.FamilyNames()), len(sc.SeriesSet()), *shards)
}

// wireSmoke converts a transaction to the v1 request shape.
func wireSmoke(t *txn.Transaction) ms.TxnRequest {
	return ms.TxnRequest{
		ID: int64(t.ID), Day: int(t.Day), Sec: t.Sec,
		From: int32(t.From), To: int32(t.To),
		Amount: t.Amount, TransCity: t.TransCity,
		DeviceRisk: t.DeviceRisk, IPRisk: t.IPRisk,
		Channel: uint8(t.Channel),
	}
}

// driveSmokeTraffic rotates score/decide/ingest/score-batch over the
// test window so the singles, scatter/gather and ingest paths all leave
// samples behind, and asserts every response carries a trace ID — the
// smoke run doubles as an end-to-end check that tracing survives the
// wire tier.
func driveSmokeTraffic(client *http.Client, base string, worldLog []txn.Transaction, n int) error {
	w := testWindow(worldLog)
	if len(w) == 0 {
		return fmt.Errorf("empty test window")
	}
	post := func(path string, body interface{}) error {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Caller", "metrics-smoke")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if resp.Header.Get(telemetry.TraceHeader) == "" {
			return fmt.Errorf("%s: response carries no %s header", path, telemetry.TraceHeader)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		t := &w[i%len(w)]
		var err error
		switch i % 4 {
		case 0:
			err = post("/v1/score", wireSmoke(t))
		case 1:
			err = post("/v1/decide", wireSmoke(t))
		case 2:
			err = post("/v1/ingest", ms.IngestRequest{TxnRequest: wireSmoke(t), Fraud: t.Fraud})
		default:
			var batch ms.BatchRequest
			for j := 0; j < 8; j++ {
				batch.Transactions = append(batch.Transactions, wireSmoke(&w[(i+j)%len(w)]))
			}
			err = post("/v1/score/batch", batch)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// scrapePage fetches one /metrics page.
func scrapePage(client *http.Client, base string) ([]byte, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

// requiredRouterFamilies is the coverage floor for the router page after
// the warm-up traffic: every /v1/stats counter the smoke fleet enables
// (scoring, ingest, decisions, endpoint and stage latency on the shard
// side; the scatter/gather and breaker counters on the router side)
// must have a Prometheus series. Families gated on subsystems the
// fixture leaves off (shadow, event log, quotas) are deliberately
// absent — their coverage is pinned by unit tests instead.
var requiredRouterFamilies = []string{
	"titant_scoring_scored_total",
	"titant_scoring_alerted_total",
	"titant_scoring_latency_seconds",
	"titant_stage_latency_seconds",
	"titant_bundle_info",
	"titant_ingest_ingested_total",
	"titant_endpoint_latency_seconds",
	"titant_policy_info",
	"titant_decisions_total",
	"titant_decision_rule_overrides_total",
	"titant_engine_shards",
	"titant_router_singles_total",
	"titant_router_batches_total",
	"titant_router_fanouts_total",
	"titant_router_controls_total",
	"titant_router_errors_total",
	"titant_router_retries_total",
	"titant_router_hedges_total",
	"titant_router_hedge_wins_total",
	"titant_router_degraded_items_total",
	"titant_router_deadline_exhausted_total",
	"titant_router_shards",
	"titant_router_quorum",
	"titant_router_breaker_state",
	"titant_router_breaker_opens_total",
	"titant_router_shard_latency_seconds",
	"titant_router_scrape_unreachable",
}

// checkScrapes holds the scraped pages to the smoke invariants and
// returns the violations.
func checkScrapes(routerPage []byte, shardPages [][]byte) []string {
	var violations []string
	if err := telemetry.Lint(routerPage); err != nil {
		violations = append(violations, fmt.Sprintf("router page fails lint: %v", err))
	}
	for i, p := range shardPages {
		if err := telemetry.Lint(p); err != nil {
			violations = append(violations, fmt.Sprintf("shard %d page fails lint: %v", i, err))
		}
	}

	routerScrape, err := telemetry.ParseExpo(routerPage)
	if err != nil {
		return append(violations, fmt.Sprintf("router page unparseable: %v", err))
	}
	families := map[string]bool{}
	for _, name := range routerScrape.FamilyNames() {
		families[name] = true
	}
	for _, name := range requiredRouterFamilies {
		if !families[name] {
			violations = append(violations, fmt.Sprintf("router page is missing required family %s", name))
		}
	}

	// The re-label diff: re-run the router's own transform on the raw
	// shard pages and require the router page to contain exactly that
	// union (plus its own titant_router_* series and its shard-less
	// wire-tier stage series).
	union := map[string]bool{}
	for i, p := range shardPages {
		sc, err := telemetry.ParseExpo(p)
		if err != nil {
			violations = append(violations, fmt.Sprintf("shard %d page unparseable: %v", i, err))
			continue
		}
		sc.AddLabel("shard", strconv.Itoa(i))
		for s := range sc.SeriesSet() {
			union[s] = true
		}
	}
	routerSet := routerScrape.SeriesSet()
	var missing, invented []string
	for s := range union {
		if !routerSet[s] {
			missing = append(missing, s)
		}
	}
	for s := range routerSet {
		if !union[s] && !strings.HasPrefix(s, "titant_router_") && strings.Contains(s, "{shard=") {
			invented = append(invented, s)
		}
	}
	sort.Strings(missing)
	sort.Strings(invented)
	for _, s := range missing {
		violations = append(violations, fmt.Sprintf("shard series absent from the router page: %s", s))
	}
	for _, s := range invented {
		violations = append(violations, fmt.Sprintf("router page carries a shard-labeled series no shard emitted: %s", s))
	}
	return violations
}
