// Command titant drives the pipeline end to end.
//
// Subcommands:
//
//	gen   -out log.bin [-users N] [-seed N] [-scenarios] [-manifest m.json]
//	                                          generate a synthetic world's log
//	eval  [-users N] [-seed N] [-dataset N]   train and evaluate one dataset
//	train -out bundle.bin [-detectors gbdt,lr,c50] [-combine mean|max|vote]
//	      [-data dir] [-users N] [-seed N] [-dataset N]
//	                                          train an ensemble bundle file
//	serve [-addr :8070] [-users N] [-seed N] [-workers N] [-model-token T]
//	      [-detectors gbdt,...] [-combine mean] [-usercache N] [-shards N]
//	      [-stream] [-stream-shards N] [-stream-buckets N] [-stream-bucket-secs N]
//	      [-policy default|file.json] [-shadow lr,...] [-shadow-queue N] [-drift]
//	      [-eventlog DIR] [-eventlog-fsync D] [-eventlog-segment-mb N]
//	      [-eventlog-snapshot-every N] [-scenarios]
//	      [-quota N] [-quota-burst N] [-max-inflight N] [-pprof ADDR]
//	                                          train, deploy and serve over HTTP
//	route -shards URL,URL,... [-addr :9090] [-timeout D] [-budget D]
//	      [-retries N] [-retry-backoff D] [-hedge D] [-fallback ACTION]
//	      [-quorum N] [-breaker-fails N] [-breaker-cooldown D] [-pprof ADDR]
//	                                          stateless scatter/gather router over a
//	                                          ring of shard servers, carrying the
//	                                          resilience plane: deadline budgets,
//	                                          retries, per-shard circuit breakers,
//	                                          hedged reads, typed degraded answers
//	                                          (see route.go)
//	logctl <inspect|compact> -dir DIR [-retain N] [-json]
//	                                          inspect or compact an event log directory
//	loadgen [-addr URL] [-schedule constant|diurnal|spike] [-rate N] [-duration D]
//	        [-opmix S:D:I] [-load-users N] [-zipf S] [-load-seed N] [-shards N]
//	        [-quota N] [-burst N] [-max-inflight N] [-out report.json] [-slo slo.json]
//	        [-chaos scenario.json] [-chaos-seed N] [-trace-sample N]
//	                                          open-loop load run graded against the
//	                                          scenario manifests (see loadgen.go);
//	                                          -slo turns the run into a pass/fail gate;
//	                                          -chaos drives an in-process wire fleet
//	                                          through a scripted fault scenario and
//	                                          gates on the breaker lifecycle;
//	                                          -trace-sample keeps the N slowest
//	                                          requests' X-Trace-Id in the report
//	metrics-smoke [-shards N] [-requests N] [-out DIR] [-users N] [-seed N]
//	              [-detectors lr] [-combine mean] [-fast]
//	                                          boot an in-process sharded fleet, drive
//	                                          traffic through the router, scrape every
//	                                          /metrics page, lint the exposition and
//	                                          diff the router's re-labeled series
//	                                          against the shard union (CI gate, see
//	                                          metricsmoke.go)
//
// train runs the offline pipeline for several detectors at once (the
// paper deploys Isolation Forest, ID3/C5.0, LR and GBDT side by side) and
// writes a v2 ensemble bundle: every member carries its own validation
// threshold, the combiner folds their scores, and cmd/msd or POST
// /v1/models serves it as-is. With -data it also uploads every user's
// features and embeddings to that store directory, so msd can serve the
// pair immediately.
//
// serve starts the Model Server of the paper's Figure 5: it trains the
// production configuration (Basic+DW+GBDT — or an ensemble when
// -detectors names several), uploads features and embeddings to the
// column-family store, and exposes the v1 API — POST /v1/score,
// POST /v1/score/batch, POST /v1/ingest[/batch], GET/POST /v1/models,
// GET /v1/stats and GET /healthz — shutting down gracefully on SIGINT or
// SIGTERM. By default it attaches a streaming aggregate store warmed from
// the training world's 90-day reference window, so scoring reads live
// per-city statistics and POST /v1/ingest keeps them current;
// -stream=false serves the paper's pure T+1 mode.
//
// The decision subsystem is on by default: -policy default derives
// approve/challenge/deny bands from the trained threshold (or names a
// policy JSON file) and enables POST /v1/decide[/batch] plus GET/POST
// /v1/policy hot-swap; -shadow lr trains a challenger ensemble served in
// shadow (champion/challenger agreement on /v1/stats); -drift monitors
// per-member score drift against a deploy-time baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"titant"
	"titant/internal/txn"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "train":
		cmdTrain(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "route":
		cmdRoute(os.Args[2:])
	case "logctl":
		cmdLogctl(os.Args[2:])
	case "loadgen":
		cmdLoadgen(os.Args[2:])
	case "metrics-smoke":
		cmdMetricsSmoke(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: titant <gen|eval|train|serve|route|logctl|loadgen|metrics-smoke> [flags]")
	os.Exit(2)
}

// parseDetectors splits a comma-separated detector list.
func parseDetectors(spec string) ([]titant.Detector, error) {
	var dets []titant.Detector
	for _, name := range strings.Split(spec, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		d, err := titant.ParseDetector(name)
		if err != nil {
			return nil, err
		}
		dets = append(dets, d)
	}
	if len(dets) == 0 {
		return nil, fmt.Errorf("no detectors in %q", spec)
	}
	return dets, nil
}

func worldFlags(fs *flag.FlagSet) (*int, *uint64) {
	users := fs.Int("users", 0, "population size (0 = default)")
	seed := fs.Uint64("seed", 0, "world seed (0 = default)")
	return users, seed
}

func buildWorld(users int, seed uint64) *titant.World {
	cfg := titant.DefaultWorldConfig()
	if users > 0 {
		cfg.Users = users
	}
	if seed > 0 {
		cfg.Seed = seed
	}
	return titant.Generate(cfg)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	users, seed := worldFlags(fs)
	out := fs.String("out", "titant-log.bin", "output file")
	scenarios := fs.Bool("scenarios", false, "compose the attack scenario library onto the base world")
	manifest := fs.String("manifest", "", "write the scenario ground-truth manifest JSON here (implies -scenarios)")
	_ = fs.Parse(args)
	var w *titant.World
	if *scenarios || *manifest != "" {
		cfg := titant.DefaultWorldConfig()
		if *users > 0 {
			cfg.Users = *users
		}
		if *seed > 0 {
			cfg.Seed = *seed
		}
		var man *titant.WorldManifest
		w, man = titant.ComposeWorld(cfg, titant.DefaultScenarioMix())
		if *manifest != "" {
			raw, err := man.Encode()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*manifest, raw, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %d scenario manifests to %s\n", len(man.Scenarios), *manifest)
		}
	} else {
		w = buildWorld(*users, *seed)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := txn.WriteLog(f, w.Log); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d transactions to %s\n%s\n", len(w.Log), *out, txn.Summarize(w.Log))
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	users, seed := worldFlags(fs)
	dataset := fs.Int("dataset", 1, "dataset number 1-7")
	_ = fs.Parse(args)
	w := buildWorld(*users, *seed)
	ds, err := w.Dataset(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	opts := titant.DefaultOptions()
	fmt.Printf("dataset %d: test day %s, %s\n", ds.Index, ds.TestDay, txn.Summarize(ds.Test))
	emb := titant.LearnEmbeddings(ds, opts)
	for _, cfg := range []struct {
		fs  titant.FeatureSet
		det titant.Detector
	}{
		{titant.FeatBasic, titant.DetIF},
		{titant.FeatBasic, titant.DetID3},
		{titant.FeatBasic, titant.DetC50},
		{titant.FeatBasic, titant.DetLR},
		{titant.FeatBasic, titant.DetGBDT},
		{titant.FeatBasicDW, titant.DetGBDT},
	} {
		r := titant.TrainEval(w.Users, ds, cfg.fs, cfg.det, emb, opts)
		fmt.Printf("%-14s + %-5s  F1=%6.2f%%  rec@1%%=%6.2f%%  AUC=%.4f\n",
			cfg.fs, cfg.det, 100*r.F1, 100*r.RecTop1, r.AUC)
	}
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	users, seed := worldFlags(fs)
	out := fs.String("out", "titant-bundle.bin", "output bundle file")
	dataDir := fs.String("data", "", "feature store directory to upload users into (empty = bundle only)")
	detectors := fs.String("detectors", "gbdt,lr,c50", "comma-separated detectors (if, id3, c50, lr, gbdt)")
	combineName := fs.String("combine", "mean", "ensemble combiner: mean, max or vote")
	dataset := fs.Int("dataset", 1, "dataset number 1-7")
	_ = fs.Parse(args)
	dets, err := parseDetectors(*detectors)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	combine, err := titant.ParseCombiner(*combineName)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	w := buildWorld(*users, *seed)
	ds, err := w.Dataset(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	opts := titant.DefaultOptions()
	log.Printf("training %d-member ensemble (%s, combiner %s)...", len(dets), *detectors, combine)
	members, emb, threshold, err := titant.TrainEnsembleForServing(w.Users, ds, dets, combine, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range members {
		log.Printf("  member %-5s threshold %.4f", m.Name, m.Threshold)
	}
	version := time.Now().Format("2006-01-02T15:04:05")
	var bundle *titant.Bundle
	if *dataDir != "" {
		tab, err := titant.OpenFeatureTable(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		defer tab.Close()
		log.Printf("uploading %d users to %s...", len(w.Users), *dataDir)
		bundle, err = titant.DeployEnsemble(w.Users, ds, emb, members, combine, threshold, opts, tab, version)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		bundle, err = titant.BuildEnsembleBundle(ds, emb, members, combine, threshold, opts, version)
		if err != nil {
			log.Fatal(err)
		}
	}
	raw, err := bundle.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: version %s, %d members, combiner %s, threshold %.4f (%d bytes)",
		*out, version, bundle.NumMembers(), combine, threshold, len(raw))
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	users, seed := worldFlags(fs)
	addr := fs.String("addr", ":8070", "listen address")
	dir := fs.String("data", "", "feature store directory (default: temp)")
	workers := fs.Int("workers", 0, "batch fan-out width (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1, "in-process engine shards: users partition by consistent hash across N engines (shard tables under -data/shard-NNN)")
	detectors := fs.String("detectors", "gbdt", "comma-separated detectors to serve (several = ensemble bundle)")
	combineName := fs.String("combine", "mean", "ensemble combiner when several detectors are named")
	token := fs.String("model-token", "", "bearer token guarding POST /v1/models and /v1/policy (empty = open)")
	userCache := fs.Int("usercache", titant.DefaultUserCacheSize, "read-through user cache entries (0 = disabled)")
	policySpec := fs.String("policy", "default", `decision policy: "default" (derived from the trained threshold), a policy JSON file path, or "" to disable /v1/decide`)
	shadowSpec := fs.String("shadow", "", "comma-separated detectors to train as a shadow challenger bundle (empty = no shadow)")
	shadowQueue := fs.Int("shadow-queue", 0, "shadow queue capacity (0 = default)")
	drift := fs.Bool("drift", true, "monitor per-member score drift (PSI/KS) against a deploy-time baseline")
	streaming := fs.Bool("stream", true, "maintain a live aggregate window (POST /v1/ingest)")
	ingestToken := fs.String("ingest-token", "", "bearer token guarding POST /v1/ingest[/batch] (empty = open)")
	streamShards := fs.Int("stream-shards", 0, "stream store lock stripes (0 = default)")
	streamBuckets := fs.Int("stream-buckets", 0, "stream window ring buckets (0 = default, 90)")
	streamBucketSecs := fs.Int64("stream-bucket-secs", 0, "stream bucket width in seconds (0 = default, 1 day)")
	elogDir := fs.String("eventlog", "", "durable event log directory: log-then-apply ingest with crash recovery (empty = disabled)")
	elogFsync := fs.Duration("eventlog-fsync", 0, "event log group-commit fsync interval (0 = default, 50ms)")
	elogSegMB := fs.Int64("eventlog-segment-mb", 0, "event log segment rotation size in MiB (0 = default, 64)")
	elogSnapEvery := fs.Int64("eventlog-snapshot-every", 0, "log events between derived-state snapshots (0 = default, 65536; negative disables)")
	scenarios := fs.Bool("scenarios", false, "train on the composed scenario world (matches `gen -scenarios` / `loadgen` ground truth)")
	quota := fs.Float64("quota", 0, "per-caller admission quota, requests/second (0 = unlimited)")
	quotaBurst := fs.Int("quota-burst", 0, "admission quota burst size (0 = 2x quota, min 1)")
	maxInflight := fs.Int("max-inflight", 0, "shed load beyond this many admitted requests (0 = unlimited)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
	_ = fs.Parse(args)
	startPprof(*pprofAddr)
	var w *titant.World
	if *scenarios {
		cfg := titant.DefaultWorldConfig()
		if *users > 0 {
			cfg.Users = *users
		}
		if *seed > 0 {
			cfg.Seed = *seed
		}
		var man *titant.WorldManifest
		w, man = titant.ComposeWorld(cfg, titant.DefaultScenarioMix())
		log.Printf("composed scenario world: %d labeled scenarios", len(man.Scenarios))
	} else {
		w = buildWorld(*users, *seed)
	}
	ds, err := w.Dataset(1)
	if err != nil {
		log.Fatal(err)
	}
	opts := titant.DefaultOptions()
	dets, err := parseDetectors(*detectors)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	combine, err := titant.ParseCombiner(*combineName)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	nShards := *shards
	if nShards < 1 {
		nShards = 1
	}
	if nShards > 1 && *elogDir != "" {
		log.Fatal("serve: -eventlog does not compose with -shards > 1 in one process; run one `titant serve -eventlog` per shard behind `titant route`")
	}
	d := *dir
	if d == "" {
		d, err = os.MkdirTemp("", "titant-hbase-*")
		if err != nil {
			log.Fatal(err)
		}
	}
	tabs := make([]*titant.FeatureTable, nShards)
	for i := range tabs {
		sd := d
		if nShards > 1 {
			sd = filepath.Join(d, fmt.Sprintf("shard-%03d", i))
		}
		if tabs[i], err = titant.OpenFeatureTable(sd); err != nil {
			log.Fatal(err)
		}
	}
	defer func() {
		for _, tb := range tabs {
			tb.Close()
		}
	}()
	// The sharded uploader routes each user to its owner table by the
	// same hash the engine scores with; over one table it degenerates to
	// the plain upload path.
	sink := titant.NewShardedUploader(tabs, 0)
	version := time.Now().Format("2006-01-02T15:04:05")
	var bundle *titant.Bundle
	var threshold float64
	if len(dets) == 1 && dets[0] == titant.DetGBDT {
		log.Printf("training production configuration (Basic+DW+GBDT)...")
		var clf titant.Classifier
		var emb *titant.Embeddings
		clf, emb, threshold, err = titant.TrainForServing(w.Users, ds, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("uploading %d users to the feature store (%d shard(s))...", len(w.Users), nShards)
		bundle, err = titant.DeployTo(w.Users, ds, emb, clf, threshold, opts, sink, version)
	} else {
		log.Printf("training %d-member ensemble (%s, combiner %s)...", len(dets), *detectors, combine)
		var members []titant.EnsembleMember
		var emb *titant.Embeddings
		members, emb, threshold, err = titant.TrainEnsembleForServing(w.Users, ds, dets, combine, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("uploading %d users to the feature store (%d shard(s))...", len(w.Users), nShards)
		bundle, err = titant.DeployEnsembleTo(w.Users, ds, emb, members, combine, threshold, opts, sink, version)
	}
	if err != nil {
		log.Fatal(err)
	}
	engOpts := []titant.EngineOption{
		titant.WithAlert(func(t *titant.Transaction, score float64) {
			log.Printf("ALERT txn=%d score=%.3f: interrupting transfer %d -> %d",
				t.ID, score, t.From, t.To)
		}),
		titant.WithWorkers(*workers),
		titant.WithModelToken(*token),
		titant.WithIngestToken(*ingestToken),
		titant.WithUserCache(*userCache),
	}
	if *quota > 0 {
		b := *quotaBurst
		if b <= 0 {
			b = int(2 * *quota)
		}
		engOpts = append(engOpts, titant.WithCallerQuota(*quota, b))
		log.Printf("admission: per-caller quota %.0f/s (burst %d)", *quota, b)
	}
	if *maxInflight > 0 {
		engOpts = append(engOpts, titant.WithMaxInflight(*maxInflight))
		log.Printf("admission: max inflight %d", *maxInflight)
	}
	if *policySpec != "" {
		pol, err := loadPolicy(*policySpec, version, threshold)
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		log.Printf("decision policy %s loaded (POST /v1/decide enabled)", pol.Version)
		engOpts = append(engOpts, titant.WithPolicy(pol))
	}
	if *shadowSpec != "" {
		shadowDets, err := parseDetectors(*shadowSpec)
		if err != nil {
			log.Fatalf("serve: shadow: %v", err)
		}
		log.Printf("training shadow challenger (%s)...", *shadowSpec)
		chMembers, chEmb, chThr, err := titant.TrainEnsembleForServing(w.Users, ds, shadowDets, combine, opts)
		if err != nil {
			log.Fatal(err)
		}
		challenger, err := titant.BuildEnsembleBundle(ds, chEmb, chMembers, combine, chThr, opts, version+"-shadow")
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("shadow challenger %s: %d member(s), threshold %.4f", challenger.Version, challenger.NumMembers(), chThr)
		engOpts = append(engOpts, titant.WithShadow(challenger), titant.WithShadowQueue(*shadowQueue))
	}
	if *drift {
		engOpts = append(engOpts, titant.WithDriftMonitor(titant.DriftConfig{}))
	}
	if *streaming {
		st := titant.NewStreamStore(
			titant.WithStreamShards(*streamShards),
			titant.WithStreamWindow(*streamBuckets, *streamBucketSecs),
			titant.WithStreamCities(opts.Cities))
		// With an event log that already holds a snapshot, recovery
		// restores the window (warm-up included, captured when the
		// snapshot was taken); re-warming here would double-count once
		// the snapshot loads on top.
		warm := true
		if *elogDir != "" {
			if insp, err := titant.InspectEventLog(*elogDir); err == nil && insp.SnapshotEnd > 0 {
				warm = false
			}
		}
		if warm {
			log.Printf("warming the live aggregate window from the %d-day reference window (%d txns)...",
				txn.NetworkDays, len(ds.Network))
			st.IngestBatch(ds.Network)
		} else {
			log.Printf("live aggregate window will restore from the event log snapshot in %s", *elogDir)
		}
		engOpts = append(engOpts, titant.WithStreamAggregates(st))
	}
	if *elogDir != "" {
		var eopts []titant.EventLogOption
		if *elogFsync > 0 {
			eopts = append(eopts, titant.WithEventLogFsyncInterval(*elogFsync))
		}
		if *elogSegMB > 0 {
			eopts = append(eopts, titant.WithEventLogSegmentBytes(*elogSegMB<<20))
		}
		engOpts = append(engOpts, titant.WithEventLog(*elogDir, eopts...))
		if *elogSnapEvery != 0 {
			engOpts = append(engOpts, titant.WithSnapshotEvery(*elogSnapEvery))
		}
	}
	// Both engine shapes serve the same v1 API; the local interface is
	// just what this function needs from either.
	type serveEngine interface {
		Close()
		ListenAndServe(ctx context.Context, addr string) error
	}
	var eng serveEngine
	if nShards > 1 {
		se, err := titant.NewShardedEngine(tabs, bundle, engOpts...)
		if err != nil {
			log.Fatal(err)
		}
		eng = se
	} else {
		e, err := titant.NewEngine(tabs[0], bundle, engOpts...)
		if err != nil {
			log.Fatal(err)
		}
		if *elogDir != "" {
			log.Printf("event log %s: replayed %d records, next offset %d",
				*elogDir, e.EventLogReplayed(), e.EventLogStats().NextOffset)
		}
		eng = e
	}
	defer eng.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("model server %s listening on %s (%d member(s), threshold %.3f, shards=%d, streaming=%v, usercache=%d, policy=%v, shadow=%v, drift=%v)",
		version, *addr, bundle.NumMembers(), threshold, nShards, *streaming, *userCache, *policySpec != "", *shadowSpec != "", *drift)
	log.Printf("v1 API: POST /v1/score[/batch], POST /v1/decide[/batch], POST /v1/ingest[/batch], GET|POST /v1/models, GET|POST /v1/policy, GET /v1/stats, GET /healthz")
	if err := eng.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// cmdLogctl inspects or compacts an event log directory offline: the
// operational counterpart of -eventlog on serve/msd. inspect never
// writes; compact removes only sealed segments that the newest snapshot
// and every committed consumer offset are past.
func cmdLogctl(args []string) {
	logctlUsage := func() {
		fmt.Fprintln(os.Stderr, "usage: titant logctl <inspect|compact> -dir DIR [-retain N] [-json]")
		os.Exit(2)
	}
	if len(args) < 1 {
		logctlUsage()
	}
	action := args[0]
	fs := flag.NewFlagSet("logctl", flag.ExitOnError)
	dir := fs.String("dir", "", "event log directory (required)")
	retain := fs.Int("retain", 0, "minimum segments compaction keeps (0 = default)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	_ = fs.Parse(args[1:])
	if *dir == "" {
		logctlUsage()
	}
	switch action {
	case "inspect":
		res, err := titant.InspectEventLog(*dir)
		if err != nil {
			log.Fatalf("logctl: %v", err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Printf("%s: %d segment(s), offsets [%d, %d), %d record(s)\n",
			*dir, len(res.Segments), res.FirstOffset, res.NextOffset, res.Records)
		for _, seg := range res.Segments {
			torn := ""
			if seg.Torn {
				torn = "  (torn tail)"
			}
			fmt.Printf("  %s  base=%d records=%d end=%d bytes=%d%s\n",
				seg.Path, seg.Base, seg.Records, seg.End, seg.Bytes, torn)
		}
		for kind, n := range res.Kinds {
			fmt.Printf("  kind %-8s %d\n", kind, n)
		}
		for name, off := range res.Consumers {
			fmt.Printf("  consumer %-12s offset=%d lag=%d\n", name, off, res.NextOffset-off)
		}
		fmt.Printf("  snapshot end=%d\n", res.SnapshotEnd)
	case "compact":
		removed, err := titant.CompactEventLog(*dir, *retain)
		if err != nil {
			log.Fatalf("logctl: %v", err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(map[string]interface{}{"removed": removed}); err != nil {
				log.Fatal(err)
			}
			return
		}
		if len(removed) == 0 {
			fmt.Println("nothing compactable: snapshot or consumers still need every sealed segment")
			return
		}
		for _, p := range removed {
			fmt.Printf("removed %s\n", p)
		}
	default:
		logctlUsage()
	}
}

// loadPolicy resolves the -policy flag: the literal "default" derives
// the built-in policy from the trained threshold, anything else reads a
// policy JSON file.
func loadPolicy(spec, version string, threshold float64) (*titant.DecisionPolicy, error) {
	if spec == "default" {
		return titant.DefaultPolicy(version, threshold), nil
	}
	raw, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	return titant.ParsePolicy(raw)
}
