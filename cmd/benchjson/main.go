// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so performance numbers land in
// version-controllable artifacts instead of log scrollback. The bench
// make target pipes the hot serving benchmarks through it to produce
// BENCH_serving.json, giving successive PRs a trajectory to compare
// against.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// Every benchmark line contributes one entry with its iteration count
// and all reported metrics (ns/op, B/op, allocs/op plus any custom
// b.ReportMetric units). Non-benchmark lines (table renders, pass/fail
// chatter) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchmarks:  []Benchmark{},
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		if b, ok := parseBench(line, pkg); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parseBench parses one "BenchmarkName-8  123  45.6 ns/op  0 B/op ..."
// line: the name, the run count, then (value, unit) pairs.
func parseBench(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so reports diff cleanly across hosts.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Package: pkg, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
