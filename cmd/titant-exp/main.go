// Command titant-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	titant-exp [-exp all|table1|table2|fig9|fig10|fig11|fig12]
//	           [-users N] [-days N] [-seed N] [-quick]
//
// Every experiment prints a paper-style text rendering. See EXPERIMENTS.md
// for the recorded reference run and the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"titant/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment: all, table1, table2, fig9, fig10, fig11, fig12")
	users := flag.Int("users", 0, "override population size")
	days := flag.Int("days", 0, "override number of test days (table1)")
	seed := flag.Uint64("seed", 0, "override world seed")
	quick := flag.Bool("quick", false, "use the reduced quick configuration")
	flag.Parse()

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	if *users > 0 {
		cfg.World.Users = *users
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed > 0 {
		cfg.World.Seed = *seed
	}

	run := func(name string, fn func() (interface{ Render() string }, error)) {
		if *which != "all" && *which != name {
			return
		}
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "titant-exp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}

	run("table1", func() (interface{ Render() string }, error) { return exp.RunTable1(cfg) })
	run("table2", func() (interface{ Render() string }, error) { return exp.RunTable2(cfg, nil) })
	run("fig9", func() (interface{ Render() string }, error) { return exp.RunFigure9(cfg) })
	run("fig10", func() (interface{ Render() string }, error) { return exp.RunFigure10(cfg) })
	run("fig11", func() (interface{ Render() string }, error) { return exp.RunFigure11(cfg, nil) })
	run("fig12", func() (interface{ Render() string }, error) { return exp.RunFigure12(cfg, nil) })

	if !strings.Contains("all table1 table2 fig9 fig10 fig11 fig12", *which) {
		fmt.Fprintf(os.Stderr, "titant-exp: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
