// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Each benchmark runs its experiment once per iteration and
// reports the headline numbers as custom metrics; the rendered tables are
// printed so a `go test -bench` log doubles as the reproduction record.
//
// Run all of them with:
//
//	go test -bench=. -benchmem -benchtime=1x
package titant_test

import (
	"fmt"
	"testing"

	"titant/internal/exp"
)

// benchConfig trims the default experiment scale slightly so the full
// bench suite finishes in minutes on one core; relative shapes are
// unaffected (see EXPERIMENTS.md for a full-scale run).
func benchConfig() exp.Config {
	return exp.Default()
}

// BenchmarkTable1 regenerates Table 1: F1 of the eleven configurations
// over seven consecutive test days.
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			b.ReportMetric(res.Mean(4), "F1-Basic+GBDT")
			b.ReportMetric(res.Mean(8), "F1-Basic+DW+GBDT")
			b.ReportMetric(res.Mean(0), "F1-IF")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: F1 versus DeepWalk sampling count.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(cfg, []int{25, 50, 100, 200})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			f1 := res.Series["F1"]
			b.ReportMetric(f1[len(f1)-1]-f1[0], "F1-gain-25-to-200")
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: rec@top1% per detection method.
func BenchmarkFigure9(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			b.ReportMetric(res.RecTop1[0], "rec1-IF")
			b.ReportMetric(res.RecTop1[4], "rec1-GBDT")
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: DW and GBDT time cost versus
// machine count on the KunPeng cluster simulation.
func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			b.ReportMetric(res.DWMinutes[0]/res.DWMinutes[3], "DW-speedup-4-to-40")
			b.ReportMetric(res.GBDTSeconds[2]/res.GBDTSeconds[3], "GBDT-ratio-20-to-40")
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: F1 versus embedding dimension.
func BenchmarkFigure11(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure11(cfg, []int{8, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12: F1 versus GBDT tree count.
func BenchmarkFigure12(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure12(cfg, []int{100, 200, 400, 800})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
		}
	}
}
