// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Each benchmark runs its experiment once per iteration and
// reports the headline numbers as custom metrics; the rendered tables are
// printed so a `go test -bench` log doubles as the reproduction record.
//
// Run all of them with:
//
//	go test -bench=. -benchmem -benchtime=1x
package titant_test

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"titant/internal/decision"
	"titant/internal/eventlog"
	"titant/internal/exp"
	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/hbase"
	"titant/internal/model/lr"
	"titant/internal/ms"
	"titant/internal/rng"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// benchConfig trims the default experiment scale slightly so the full
// bench suite finishes in minutes on one core; relative shapes are
// unaffected (see EXPERIMENTS.md for a full-scale run).
func benchConfig() exp.Config {
	return exp.Default()
}

// BenchmarkTable1 regenerates Table 1: F1 of the eleven configurations
// over seven consecutive test days.
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			b.ReportMetric(res.Mean(4), "F1-Basic+GBDT")
			b.ReportMetric(res.Mean(8), "F1-Basic+DW+GBDT")
			b.ReportMetric(res.Mean(0), "F1-IF")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: F1 versus DeepWalk sampling count.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(cfg, []int{25, 50, 100, 200})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			f1 := res.Series["F1"]
			b.ReportMetric(f1[len(f1)-1]-f1[0], "F1-gain-25-to-200")
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: rec@top1% per detection method.
func BenchmarkFigure9(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			b.ReportMetric(res.RecTop1[0], "rec1-IF")
			b.ReportMetric(res.RecTop1[4], "rec1-GBDT")
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: DW and GBDT time cost versus
// machine count on the KunPeng cluster simulation.
func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
			b.ReportMetric(res.DWMinutes[0]/res.DWMinutes[3], "DW-speedup-4-to-40")
			b.ReportMetric(res.GBDTSeconds[2]/res.GBDTSeconds[3], "GBDT-ratio-20-to-40")
		}
	}
}

// benchToyLR trains a toy LR model over amount (mirroring BasicFromParts'
// layout), keeping the serving benchmarks about the serving path, not
// training.
func benchToyLR(embDim int) (*lr.Model, feature.CityTable) {
	r := rng.New(4)
	n := 2000
	m := feature.NewMatrix(n, feature.NumBasic+2*embDim)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		amt := r.Float64() * 2000
		m.Set(i, 0, amt)
		m.Set(i, 1, math.Log1p(amt))
		labels[i] = amt > 1200 && r.Bool(0.9)
	}
	clf := lr.Train(m, labels, lr.Config{Bins: 32, L1: 0.01, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 10, Seed: 1})
	city := feature.CityTable{Fraud: []float64{0.01, 0.2}, Share: []float64{0.9, 0.1}}
	return clf, city
}

// servingFixture builds a serving engine over an uploaded feature store
// and a 1k-transaction batch drawn from a hot user set, so the batch path
// has fetch work to deduplicate. Extra engine options (e.g. a streaming
// aggregate store) are passed through to ms.New.
func servingFixture(b *testing.B, opts ...ms.Option) (*ms.Server, []txn.Transaction) {
	b.Helper()
	const (
		users  = 1000
		hot    = 200 // txns draw from this prefix: ~5 txns per hot user
		embDim = 8
		nTxns  = 1000
	)
	tab, err := hbase.Open(hbase.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tab.Close() })
	r := rng.New(3)
	up := &ms.Uploader{Table: tab}
	for i := 0; i < users; i++ {
		u := txn.User{ID: txn.UserID(i), Age: uint8(20 + i%50), AvgAmount: float32(50 + i%200)}
		emb := make([]float32, embDim)
		for j := range emb {
			emb[j] = float32(r.Float64() - 0.5)
		}
		if err := up.PutUser(&u, feature.UserStats{OutCount: float64(i % 10)}, emb); err != nil {
			b.Fatal(err)
		}
	}
	clf, city := benchToyLR(embDim)
	bundle, err := ms.NewBundle("bench", clf, 0.5, city, embDim)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := ms.New(tab, bundle, opts...)
	if err != nil {
		b.Fatal(err)
	}
	txns := make([]txn.Transaction, nTxns)
	for i := range txns {
		txns[i] = txn.Transaction{
			ID:   txn.TxnID(i + 1),
			From: txn.UserID(r.Intn(hot)), To: txn.UserID(r.Intn(hot)),
			Amount: float32(r.Float64() * 2000),
		}
	}
	return srv, txns
}

// BenchmarkScoreSequential scores a 1k-transaction batch one Score call
// at a time — the pre-v1 serving pattern.
func BenchmarkScoreSequential(b *testing.B) {
	srv, txns := servingFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range txns {
			if _, err := srv.Score(ctx, &txns[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(txns)), "ns/txn")
}

// BenchmarkScoreBatch scores the same 1k transactions through ScoreBatch:
// worker fan-out, per-batch user-fetch deduplication, and the pooled
// batch-native matrix path.
func BenchmarkScoreBatch(b *testing.B) {
	srv, txns := servingFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.ScoreBatch(ctx, txns); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(txns)), "ns/txn")
}

// BenchmarkScoreBatchCached scores the same 1k transactions with the
// read-through user cache in front of the feature store: after the first
// batch warms it, phase 1 of every batch is pure shard probes — no store
// locks, no codec work — so the remaining cost is assembly plus the
// model. Compare against BenchmarkScoreBatch (same workload, no cache)
// for the read path's share of batch latency.
func BenchmarkScoreBatchCached(b *testing.B) {
	srv, txns := servingFixture(b, ms.WithUserCache(1<<14))
	ctx := context.Background()
	if _, err := srv.ScoreBatch(ctx, txns); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.ScoreBatch(ctx, txns); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(txns)), "ns/txn")
}

// BenchmarkScoreBatchTraced pins the telemetry plane's hot-path cost.
// Two engines run the BenchmarkScoreBatch workload: one with span
// aggregation off (ms.WithoutTracing) and one fully traced — a trace
// ID on the context, per-stage spans recorded into the stage
// histograms, every batch offered to the slow-exemplar ring. The guard
// is enforced before the reported sub-runs, on the minimum of eight
// timed batches per engine (the minimum filters scheduler noise):
// tracing may add at most 5% to batch latency and may not allocate a
// single extra object per op.
func BenchmarkScoreBatchTraced(b *testing.B) {
	untracedSrv, untracedTxns := servingFixture(b, ms.WithoutTracing())
	tracedSrv, tracedTxns := servingFixture(b)
	id, ok := telemetry.ParseTraceID("00112233445566778899aabbccddeeff")
	if !ok {
		b.Fatal("bad trace-ID literal")
	}
	untracedCtx := context.Background()
	tracedCtx := telemetry.WithTrace(context.Background(), id)

	score := func(srv *ms.Server, ctx context.Context, txns []txn.Transaction) {
		if _, err := srv.ScoreBatch(ctx, txns); err != nil {
			b.Fatal(err)
		}
	}
	minBatch := func(srv *ms.Server, ctx context.Context, txns []txn.Transaction) time.Duration {
		score(srv, ctx, txns) // warm the matrix pools and the exemplar ring
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 8; i++ {
			start := time.Now()
			score(srv, ctx, txns)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	base := minBatch(untracedSrv, untracedCtx, untracedTxns)
	traced := minBatch(tracedSrv, tracedCtx, tracedTxns)
	if float64(traced) > float64(base)*1.05 {
		b.Errorf("tracing overhead %.1f%% exceeds the 5%% budget (untraced %v/batch, traced %v/batch)",
			100*(float64(traced)/float64(base)-1), base, traced)
	}
	baseAllocs := testing.AllocsPerRun(3, func() { score(untracedSrv, untracedCtx, untracedTxns) })
	tracedAllocs := testing.AllocsPerRun(3, func() { score(tracedSrv, tracedCtx, tracedTxns) })
	if tracedAllocs-baseAllocs >= 1 {
		b.Errorf("tracing allocates: %.0f allocs/op untraced, %.0f traced", baseAllocs, tracedAllocs)
	}

	run := func(srv *ms.Server, ctx context.Context, txns []txn.Transaction) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.ScoreBatch(ctx, txns); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(txns)), "ns/txn")
		}
	}
	b.Run("untraced", run(untracedSrv, untracedCtx, untracedTxns))
	b.Run("traced", run(tracedSrv, tracedCtx, tracedTxns))
}

// shardedFixture is servingFixture over the consistent-hash sharded
// engine: the same 1000 users partitioned across n shard tables by
// ms.ShardOf, the same hot-prefix 1k-transaction batch. Every shard is
// pinned to one internal worker (ms.WithWorkers(1)) so the measured
// speedup is the horizontal scatter across shards, not each shard's own
// batch fan-out double-counting the cores.
func shardedFixture(b *testing.B, n int, opts ...ms.Option) (*ms.ShardedEngine, []*hbase.Table, []txn.Transaction) {
	b.Helper()
	const (
		users  = 1000
		hot    = 200
		embDim = 8
		nTxns  = 1000
	)
	tabs := make([]*hbase.Table, n)
	for i := range tabs {
		tab, err := hbase.Open(hbase.Config{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { tab.Close() })
		tabs[i] = tab
	}
	r := rng.New(3)
	up := ms.NewShardedUploader(tabs, 0)
	for i := 0; i < users; i++ {
		u := txn.User{ID: txn.UserID(i), Age: uint8(20 + i%50), AvgAmount: float32(50 + i%200)}
		emb := make([]float32, embDim)
		for j := range emb {
			emb[j] = float32(r.Float64() - 0.5)
		}
		if err := up.PutUser(&u, feature.UserStats{OutCount: float64(i % 10)}, emb); err != nil {
			b.Fatal(err)
		}
	}
	clf, city := benchToyLR(embDim)
	bundle, err := ms.NewBundle("bench", clf, 0.5, city, embDim)
	if err != nil {
		b.Fatal(err)
	}
	se, err := ms.NewSharded(tabs, bundle, append([]ms.Option{ms.WithWorkers(1)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(se.Close)
	txns := make([]txn.Transaction, nTxns)
	for i := range txns {
		txns[i] = txn.Transaction{
			ID:   txn.TxnID(i + 1),
			From: txn.UserID(r.Intn(hot)), To: txn.UserID(r.Intn(hot)),
			Amount: float32(r.Float64() * 2000),
		}
	}
	return se, tabs, txns
}

// BenchmarkScoreBatchSharded scores the 1k-transaction batch through the
// in-process sharded engine at ring widths 1, 2, 4 and 8. Shards score
// concurrently (one worker each), so on a multi-core runner throughput
// scales with the ring until cores run out; on a single core the widths
// collapse to the same wall time and the metric records the scatter
// overhead instead. The shards-1 case first proves bitwise verdict
// identity against the unsharded engine over the same table — the
// rebalance-safety invariant the sharded tests pin, re-checked where the
// numbers are produced.
func BenchmarkScoreBatchSharded(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			se, tabs, txns := shardedFixture(b, n)
			if n == 1 {
				clf, city := benchToyLR(8) // deterministic: same bundle the fixture built
				bundle, err := ms.NewBundle("bench", clf, 0.5, city, 8)
				if err != nil {
					b.Fatal(err)
				}
				ref, err := ms.New(tabs[0], bundle, ms.WithWorkers(1))
				if err != nil {
					b.Fatal(err)
				}
				want, err := ref.ScoreBatch(ctx, txns)
				if err != nil {
					b.Fatal(err)
				}
				got, err := se.ScoreBatch(ctx, txns)
				if err != nil {
					b.Fatal(err)
				}
				for i := range want {
					if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
						b.Fatalf("txn %d: sharded score %v != unsharded %v", i, got[i].Score, want[i].Score)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := se.ScoreBatch(ctx, txns); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(txns)), "ns/txn")
		})
	}
}

// BenchmarkDecideBatch measures the decision path against the plain
// scoring path on the same workload: the "policy" variant (policy
// enabled, shadow off — the acceptance configuration, compare its ns/txn
// to BenchmarkScoreBatch) pays one allocation-free policy evaluation and
// two drift-monitor atomic adds per row on top of scoring, and the
// "shadow" variant adds the non-blocking challenger enqueue (the
// challenger itself scores on the worker, off this path).
func BenchmarkDecideBatch(b *testing.B) {
	pol := decision.Default("bench-pol", 0.5)
	run := func(b *testing.B, srv *ms.Server, txns []txn.Transaction) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.DecideBatch(ctx, txns, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(txns)), "ns/txn")
	}
	b.Run("policy", func(b *testing.B) {
		srv, txns := servingFixture(b,
			ms.WithPolicy(pol),
			ms.WithDriftMonitor(decision.DriftConfig{}))
		run(b, srv, txns)
	})
	b.Run("shadow", func(b *testing.B) {
		const embDim = 8
		clf, city := benchToyLR(embDim)
		challenger, err := ms.NewBundle("bench-shadow", clf, 0.5, city, embDim)
		if err != nil {
			b.Fatal(err)
		}
		srv, txns := servingFixture(b,
			ms.WithPolicy(pol),
			ms.WithDriftMonitor(decision.DriftConfig{}),
			ms.WithShadow(challenger))
		b.Cleanup(srv.Close)
		run(b, srv, txns)
		st := srv.ShadowStats()
		b.ReportMetric(float64(st.Dropped), "shadow-dropped")
	})
}

// BenchmarkScoreBatchEnsemble scores the 1k-transaction batch through
// mean-combined ensemble bundles of 1, 2 and 4 LR members: total cost
// grows with member count, but sublinearly — the fetch and assembly
// phases are shared across members, so ensemble width is a model cost,
// not a serving-architecture cost.
func BenchmarkScoreBatchEnsemble(b *testing.B) {
	const embDim = 8
	clf, city := benchToyLR(embDim)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("members-%d", n), func(b *testing.B) {
			srv, txns := servingFixture(b)
			members := make([]ms.EnsembleMember, n)
			for k := range members {
				members[k] = ms.EnsembleMember{Name: fmt.Sprintf("lr%d", k), Clf: clf, Threshold: 0.5}
			}
			bundle, err := ms.NewEnsembleBundle("bench-ens", members, ms.CombineMean, 0.5, city, embDim)
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.SetBundle(bundle); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.ScoreBatch(ctx, txns); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(txns)), "ns/txn")
		})
	}
}

// scoreP99 runs b.N Score calls, measuring each, and reports the p50/p99
// per-call latency as benchmark metrics.
func scoreP99(b *testing.B, srv *ms.Server, txns []txn.Transaction) {
	ctx := context.Background()
	lats := make([]time.Duration, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := srv.Score(ctx, &txns[i%len(txns)]); err != nil {
			b.Fatal(err)
		}
		lats[i] = time.Since(start)
	}
	b.StopTimer()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	b.ReportMetric(float64(lats[len(lats)/2].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns")
}

// BenchmarkScoreUnderIngest compares the hot scoring path with and
// without concurrent streaming-ingest load: the "readonly" variant scores
// against a warmed live window with no writers, "ingest4writers" scores
// while four goroutines sustain a 100k txn/s aggregate ingest rate into
// the same window — orders of magnitude beyond the paper's workload, yet
// bounded (ingest costs ~1µs, so unpaced spin loops would measure CPU
// oversubscription on small machines, not the store). The acceptance bar
// is p99(ingest) within 2x of p99(readonly): lock striping plus the
// lock-free atomic city sums keep the read path flat under write load.
func BenchmarkScoreUnderIngest(b *testing.B) {
	const cities = 64
	fixture := func(b *testing.B) (*ms.Server, *stream.Store, []txn.Transaction) {
		st := stream.New(stream.WithCities(cities), stream.WithWindow(90, 86400))
		srv, txns := servingFixture(b, ms.WithStreamAggregates(st))
		r := rng.New(9)
		warm := make([]txn.Transaction, 100000)
		for i := range warm {
			warm[i] = txn.Transaction{
				ID:  txn.TxnID(i),
				Day: txn.Day(i / 1200), Sec: int32(i % 86400),
				From: txn.UserID(r.Intn(1000)), To: txn.UserID(r.Intn(1000)),
				Amount: float32(r.Float64() * 2000), TransCity: uint16(r.Intn(cities)),
				Fraud: r.Bool(0.02),
			}
		}
		st.IngestBatch(warm)
		return srv, st, txns
	}
	b.Run("readonly", func(b *testing.B) {
		srv, _, txns := fixture(b)
		scoreP99(b, srv, txns)
	})
	b.Run("ingest4writers", func(b *testing.B) {
		srv, st, txns := fixture(b)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		const (
			burst        = 32
			perWriterQPS = 25000 // x4 writers = 100k ingests/s aggregate
		)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rng.New(seed)
				interval := burst * time.Second / perWriterQPS
				next := time.Now()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					for k := 0; k < burst; k++ {
						tx := txn.Transaction{
							Day: txn.Day(84 + i/100000), Sec: int32(i % 86400),
							From: txn.UserID(r.Intn(1000)), To: txn.UserID(r.Intn(1000)),
							Amount: float32(r.Float64() * 2000), TransCity: uint16(r.Intn(cities)),
						}
						st.Ingest(&tx)
						i++
					}
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
			}(uint64(w + 1))
		}
		scoreP99(b, srv, txns)
		close(stop)
		wg.Wait()
	})
}

// BenchmarkIngestLogged measures what durability costs the ingest hot
// path: "unlogged" is the memory-only window, "logged" adds the
// log-then-apply append under the default 50ms group commit (the append
// itself buffers — fsync cost is amortised across the commit interval),
// and "logged-fsync-1ms" tightens the commit interval 50x to bound the
// worst case. The acceptance bar is allocation-flat logged ingest: the
// envelope and record encode into a reused scratch buffer, so allocs/op
// must not grow over the unlogged path.
func BenchmarkIngestLogged(b *testing.B) {
	run := func(b *testing.B, opts ...ms.Option) {
		st := stream.New(stream.WithWindow(90, 86400), stream.WithCities(64))
		srv, txns := servingFixture(b, append([]ms.Option{ms.WithStreamAggregates(st)}, opts...)...)
		b.Cleanup(srv.Close)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := srv.Ingest(&txns[i%len(txns)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unlogged", func(b *testing.B) { run(b) })
	b.Run("logged", func(b *testing.B) {
		run(b, ms.WithEventLog(b.TempDir()), ms.WithSnapshotEvery(-1))
	})
	b.Run("logged-fsync-1ms", func(b *testing.B) {
		run(b,
			ms.WithEventLog(b.TempDir(), eventlog.WithFsyncInterval(time.Millisecond)),
			ms.WithSnapshotEvery(-1))
	})
}

// BenchmarkReplay measures crash-recovery speed: a 20k-record event log
// is built once (snapshots disabled, so every iteration replays the full
// log), then each iteration constructs a fresh engine over it and times
// snapshot-load + tail-replay — the startup path after a kill. The
// ns/record metric is the recovery budget per logged transaction.
func BenchmarkReplay(b *testing.B) {
	const (
		embDim   = 8
		nRecords = 20000
		cities   = 64
	)
	tab, err := hbase.Open(hbase.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tab.Close() })
	clf, city := benchToyLR(embDim)
	bundle, err := ms.NewBundle("bench-replay", clf, 0.5, city, embDim)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	newServer := func() *ms.Server {
		st := stream.New(stream.WithWindow(90, 86400), stream.WithCities(cities))
		srv, err := ms.New(tab, bundle,
			ms.WithStreamAggregates(st),
			ms.WithEventLog(dir), ms.WithSnapshotEvery(-1))
		if err != nil {
			b.Fatal(err)
		}
		return srv
	}
	srv := newServer()
	r := rng.New(11)
	for i := 0; i < nRecords; i++ {
		tx := txn.Transaction{
			ID:  txn.TxnID(i + 1),
			Day: txn.Day(i / 1200), Sec: int32(i % 86400),
			From: txn.UserID(r.Intn(1000)), To: txn.UserID(r.Intn(1000)),
			Amount: float32(r.Float64() * 2000), TransCity: uint16(r.Intn(cities)),
			Fraud: r.Bool(0.02),
		}
		if err := srv.Ingest(&tx); err != nil {
			b.Fatal(err)
		}
	}
	srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := newServer()
		if got := srv.EventLogReplayed(); got != nRecords {
			b.Fatalf("replayed %d records, want %d", got, nRecords)
		}
		b.StopTimer()
		srv.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nRecords), "ns/record")
}

// BenchmarkFigure11 regenerates Figure 11: F1 versus embedding dimension.
func BenchmarkFigure11(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure11(cfg, []int{8, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12: F1 versus GBDT tree count.
func BenchmarkFigure12(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure12(cfg, []int{100, 200, 400, 800})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(res.Render())
		}
	}
}
