package titant_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"titant"
	"titant/internal/faultinject"
	"titant/internal/loadgen"
	"titant/internal/ms"
	"titant/internal/router"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// TestChaosWireTierShardOutage is the chaos gate: a 4-shard wire fleet
// under a seeded fault script loses one shard to a scripted blackhole
// mid-run and must prove, phase by phase, that the resilience plane
// holds:
//
//  1. healthy baseline — the full labeled replay through the router
//     clears the ci/slo.json latency ceilings and recall floors;
//  2. outage — the victim's items come back as typed shard_unavailable
//     degraded envelopes (decide items carrying the fail-closed
//     fallback action, never a silent wrong verdict), the victim's
//     breaker trips, and traffic owned by the three surviving shards
//     still clears the pinned latency ceilings;
//  3. revival — when the scripted window closes the breaker half-opens,
//     a probe closes it, and a full replay returns recall to the pinned
//     floors.
//
// The workload, the fault schedule and the backoff jitter are all
// seeded, so a failure here is a resilience regression, not noise.
func TestChaosWireTierShardOutage(t *testing.T) {
	const (
		shardsN = 4
		victim  = 1
		// replayRate paces the full-replay phases. The whole fleet —
		// four shard engines, the router and the driver — shares this
		// process's CPU budget, so the rate is modest: the gate proves
		// resilience semantics, not peak throughput.
		replayRate = 900.0
	)
	sloDoc, err := os.ReadFile("ci/slo.json")
	if err != nil {
		t.Fatal(err)
	}
	slo, err := loadgen.ParseSLO(sloDoc)
	if err != nil {
		t.Fatal(err)
	}

	// Build and serve the composed world, as the detection gate does.
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 1200
	world, man := titant.ComposeWorld(cfg, titant.DefaultScenarioMix())
	ds, err := world.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 40
	opts.LR.Iterations = 5
	opts.DW.WalksPerNode = 3
	opts.S2V.Epochs = 2
	members, emb, threshold, err := titant.TrainEnsembleForServing(
		world.Users, ds, []titant.Detector{titant.DetGBDT}, titant.CombineMean, opts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := titant.OpenFeatureTable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	bundle, err := titant.DeployEnsemble(world.Users, ds, emb, members, titant.CombineMean, threshold, opts, tab, "chaos")
	if err != nil {
		t.Fatal(err)
	}

	// Four shard servers over the replicated table, each with its own
	// warmed stream window, behind real HTTP listeners.
	urls := make([]string, shardsN)
	for i := 0; i < shardsN; i++ {
		st := titant.NewStreamStore(titant.WithStreamCities(opts.Cities))
		st.IngestBatch(ds.Network)
		eng, err := titant.NewEngine(tab, bundle, titant.WithStreamAggregates(st))
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		hs := httptest.NewServer(eng.Handler())
		defer hs.Close()
		urls[i] = hs.URL
	}

	// Both wire hops reuse connections aggressively: the default
	// transports keep only two idle conns per host, and the redial storm
	// at load-test rates costs more CPU and ports than the requests.
	wire := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 128}
	defer wire.CloseIdleConnections()
	clientSide := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 256}
	defer clientSide.CloseIdleConnections()
	cut := txn.Day(txn.NetworkDays + txn.TrainDays)
	var replay []txn.Transaction
	for i := range world.Log {
		if world.Log[i].Day >= cut {
			replay = append(replay, world.Log[i])
		}
	}

	// Phase windows, derived from how long a full replay takes at the
	// pinned rate (plus slack for slow machines and -race): the scripted
	// blackhole opens after the healthy phase and closes after the
	// degraded phase plus the direct breaker assertions. Each window
	// leaves room for one retry of its phase — see fullReplay below.
	fullDur := time.Duration(float64(len(replay))/replayRate*float64(time.Second)) + 500*time.Millisecond
	outageAt := 2*fullDur + 3*time.Second
	revureAt := outageAt + 11*time.Second // outage window closes here

	// The seeded fault script: blackhole the victim shard for the
	// scripted window, then give it back.
	scenario := &faultinject.Scenario{Seed: 99, Rules: []faultinject.Rule{{
		Shard:   victim,
		Kind:    faultinject.KindBlackhole,
		StartMs: outageAt.Milliseconds(),
		EndMs:   revureAt.Milliseconds(),
	}}}
	chaos := faultinject.NewTransport(wire, scenario, faultinject.ShardByHost(urls))
	rt, err := router.New(urls,
		router.WithTransport(chaos),
		router.WithTimeout(80*time.Millisecond),
		router.WithRetries(1, 5*time.Millisecond, 10*time.Millisecond),
		router.WithBreaker(router.BreakerConfig{ConsecutiveFails: 3, Cooldown: 200 * time.Millisecond}),
		router.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	target := &loadgen.HTTPTarget{BaseURL: front.URL, Client: &http.Client{Transport: clientSide}}
	runPhase := func(name string, dur time.Duration, rate float64, rep []txn.Transaction) *loadgen.Report {
		t.Helper()
		r, err := loadgen.Run(context.Background(), loadgen.Config{
			Schedule: loadgen.Constant{Rate: rate},
			Duration: dur,
			Seed:     7,
			Mix:      loadgen.OpMix{Score: 1},
			Users:    10000,
			Shards:   shardsN,
			Replay:   rep,
			Manifest: man,
		}, target)
		if err != nil {
			t.Fatalf("%s phase: %v", name, err)
		}
		return r
	}
	routerSection := func() map[string]interface{} {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats["router"].(map[string]interface{})
	}
	victimBreaker := func() map[string]interface{} {
		return routerSection()["breakers"].([]interface{})[victim].(map[string]interface{})
	}

	// Warm the wire path before the fault clock starts: connections, the
	// engines' first-request paths and the post-training heap all settle
	// outside the measured phases.
	runPhase("warmup", time.Second, 300, nil)
	runtime.GC()

	latencyOnly := func(v []string) bool {
		for _, s := range v {
			if !strings.Contains(s, "latency") {
				return false
			}
		}
		return len(v) > 0
	}

	start := time.Now()
	chaos.Start(start)

	// fullReplay drives the whole labeled replay through the router and
	// holds it to the pinned SLO. A latency-only breach gets one retry if
	// the fault schedule leaves room: on a shared single-core runner one
	// stray scheduler or GC stall queues hundreds of arrivals and blows
	// the tail ceilings without any shard misbehaving, and a genuine
	// regression fails twice. Errors, degraded answers, replay coverage
	// and recall are never retried.
	fullReplay := func(name string, notAfter time.Time) *loadgen.Report {
		t.Helper()
		for attempt := 0; ; attempt++ {
			rep := runPhase(name, fullDur, replayRate, replay)
			if rep.Errors != 0 || rep.Degraded != 0 {
				t.Fatalf("%s phase not clean: %d errors, %d degraded", name, rep.Errors, rep.Degraded)
			}
			if rep.Replayed != int64(len(replay)) {
				t.Fatalf("%s phase replayed %d of %d", name, rep.Replayed, len(replay))
			}
			v := rep.CheckSLO(slo)
			if len(v) == 0 {
				return rep
			}
			if attempt == 0 && latencyOnly(v) && time.Now().Add(fullDur+time.Second).Before(notAfter) {
				t.Logf("%s phase hit a latency blip, retrying once: %v", name, v)
				continue
			}
			t.Fatalf("%s phase SLO violations: %v", name, v)
		}
	}

	// Phase 1: healthy fleet, full replay, the pinned SLO holds end to
	// end through the wire tier.
	healthy := fullReplay("healthy", start.Add(outageAt))

	// The scripted outage begins.
	time.Sleep(time.Until(start.Add(outageAt)))

	// The victim's items degrade with typed errors; decide carries the
	// fail-closed fallback. Hammering the dead shard trips its breaker.
	victimUser := int32(-1)
	for u := 0; u < 10000; u++ {
		if ms.ShardOf(txn.UserID(u), shardsN) == victim {
			victimUser = int32(u)
			break
		}
	}
	single := []byte(fmt.Sprintf(`{"id":900001,"from":%d,"amount":25}`, victimUser))
	tripped := false
	for i := 0; i < 20 && !tripped; i++ {
		resp, err := http.Post(front.URL+"/v1/score", "application/json", bytes.NewReader(single))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("score to blackholed shard: %d, want 503", resp.StatusCode)
		}
		st := victimBreaker()["state"].(string)
		tripped = st == "open" || st == "half_open"
	}
	if !tripped {
		t.Fatal("victim breaker never tripped under the blackhole")
	}

	// The degraded decide path must not lose the caller's trace identity:
	// the adopted X-Trace-Id rides through the breaker-open fallback onto
	// both the response header and the fallback envelope itself.
	const chaosTrace = "c4a05c4a05c4a05c4a05c4a05c4a05aa"
	dreq, err := http.NewRequest(http.MethodPost, front.URL+"/v1/decide", bytes.NewReader(single))
	if err != nil {
		t.Fatal(err)
	}
	dreq.Header.Set("Content-Type", "application/json")
	dreq.Header.Set(telemetry.TraceHeader, chaosTrace)
	resp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	var dd ms.DegradedDecision
	err = json.NewDecoder(resp.Body).Decode(&dd)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded decide: status %d, err %v", resp.StatusCode, err)
	}
	if !dd.Degraded || dd.Action != ms.FallbackActionReview ||
		dd.Error == nil || dd.Error.Code != ms.CodeShardUnavailable || dd.Error.Shard != victim {
		t.Fatalf("degraded decide envelope = %+v", dd)
	}
	if got := resp.Header.Get(telemetry.TraceHeader); got != chaosTrace {
		t.Fatalf("degraded decide response trace = %q, want adopted %q", got, chaosTrace)
	}
	if dd.TraceID != chaosTrace {
		t.Fatalf("degraded decide envelope trace_id = %q, want %q", dd.TraceID, chaosTrace)
	}

	// Phase 2: traffic through the degraded fleet. The victim's items
	// fast-fail into typed degraded envelopes (counted apart from
	// errors), so the surviving shards' answers still clear the pinned
	// latency ceilings — the recall floors are deliberately absent here,
	// since a quarter of the fraud is dark by design.
	sloDegraded := &loadgen.SLO{MaxP99Ms: slo.MaxP99Ms, MaxP999Ms: slo.MaxP999Ms, MaxErrorRate: slo.MaxErrorRate}
	outage := runPhase("outage", 1500*time.Millisecond, 600, replay)
	if v := outage.CheckSLO(sloDegraded); latencyOnly(v) && time.Now().Add(2*time.Second).Before(start.Add(revureAt)) {
		t.Logf("outage phase hit a latency blip, retrying once: %v", v)
		outage = runPhase("outage", 1500*time.Millisecond, 600, replay)
	}
	if v := outage.CheckSLO(sloDegraded); len(v) != 0 {
		t.Fatalf("outage phase SLO violations on surviving shards: %v", v)
	}
	if outage.Degraded == 0 {
		t.Fatal("outage phase produced no degraded envelopes — was the shard really dark?")
	}

	// Phase 3: the scripted window closes; the breaker half-opens, a
	// probe succeeds and the circuit closes.
	time.Sleep(time.Until(start.Add(revureAt + 100*time.Millisecond)))
	revived := false
	for i := 0; i < 40 && !revived; i++ {
		resp, err := http.Post(front.URL+"/v1/score", "application/json", bytes.NewReader(single))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		revived = resp.StatusCode == http.StatusOK
		if !revived {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !revived {
		t.Fatal("victim shard never served again after the fault window closed")
	}
	brk := victimBreaker()
	if brk["state"] != "closed" {
		t.Fatalf("victim breaker %v after revival, want closed", brk["state"])
	}
	if brk["opens"].(float64) < 1 || brk["half_opens"].(float64) < 1 || brk["probes"].(float64) < 1 {
		t.Fatalf("breaker lifecycle counters = %v, want opens/half_opens/probes >= 1", brk)
	}

	// Full replay again: recall is back at the pinned floors. No fault
	// window constrains this phase, so the retry bound is generous.
	recovered := fullReplay("recovered", time.Now().Add(time.Hour))
	if recovered.Recall < healthy.Recall-0.05 {
		t.Fatalf("recall %.3f after revival, was %.3f before the outage", recovered.Recall, healthy.Recall)
	}

	// The /healthz satellite view agrees throughout: with one of four
	// shards dark the fleet reported degraded-but-200 (quorum 3 of 4
	// held); healthy again now.
	var health map[string]interface{}
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil || hresp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("post-revival health: status %d, body %v (err %v)", hresp.StatusCode, health, err)
	}
}
