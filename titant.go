// Package titant is a from-scratch reproduction of "TitAnt: Online
// Real-time Transaction Fraud Detection in Ant Financial" (Cao et al.,
// VLDB 2019): an end-to-end fraud-detection pipeline with offline
// periodical training over a transaction store, network-representation
// learning on the transaction graph, classical detectors over
// basic-features-plus-embeddings, and a millisecond-latency online model
// server backed by a column-family feature store.
//
// This top-level package is the public API; it re-exports the pieces a
// downstream user needs:
//
//	world := titant.Generate(titant.DefaultWorldConfig()) // synthetic workload
//	ds, _ := world.Dataset(1)                             // 90d network / 14d train / 1d test
//	opts := titant.DefaultOptions()
//	emb := titant.LearnEmbeddings(ds, opts)               // DeepWalk + Structure2Vec
//	res := titant.TrainEval(world.Users, ds, titant.FeatBasicDW, titant.DetGBDT, emb, opts)
//	fmt.Println(res.F1)
//
// For online serving, deploy a trained bundle into a feature table and
// build the v1 scoring engine; attach a streaming aggregate store so
// scoring reads statistics updated by live traffic instead of the
// T+1 snapshot:
//
//	st := titant.NewStreamStore()               // live sliding-window aggregates
//	eng, _ := titant.NewEngine(tab, bundle,
//	    titant.WithAlert(onFraud), titant.WithStreamAggregates(st))
//	v, _ := eng.Score(ctx, &tx)                 // single, context-aware
//	vs, _ := eng.ScoreBatch(ctx, batch)         // fan-out + fetch dedup
//	_ = eng.Ingest(&tx)                         // observed transfer -> live window
//	_ = eng.ListenAndServe(ctx, ":8070")        // POST /v1/score, /v1/ingest, ...
//
// Attach a decision policy to turn raw scores into online risk actions
// (approve / challenge / deny) under per-scenario threshold bands and
// rule predicates, shadow-score a challenger bundle off the hot path,
// and monitor score drift against a deploy-time baseline:
//
//	eng, _ = titant.NewEngine(tab, bundle,
//	    titant.WithPolicy(titant.DefaultPolicy("pol-1", bundle.Threshold)),
//	    titant.WithShadow(challenger),
//	    titant.WithDriftMonitor(titant.DriftConfig{}))
//	d, _ := eng.Decide(ctx, &tx, titant.ScenarioTransfer) // d.Action, d.Reason
//
// See the examples/ directory for runnable end-to-end programs, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure.
package titant

import (
	"context"
	"time"

	"titant/internal/core"
	"titant/internal/decision"
	"titant/internal/eventlog"
	"titant/internal/exp"
	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/hbase"
	"titant/internal/model"
	"titant/internal/ms"
	"titant/internal/ms/usercache"
	"titant/internal/synth"
	"titant/internal/txn"
)

// Re-exported core types.
type (
	// WorldConfig controls the synthetic transaction workload.
	WorldConfig = synth.Config
	// World is a generated environment: users, fraud rings, transaction log.
	World = synth.World
	// ScenarioMix selects how many incidents of each attack scenario
	// (account takeover, merchant bust-out, mule chains, card testing)
	// ComposeWorld layers onto the base ring-fraud world.
	ScenarioMix = synth.ScenarioMix
	// ScenarioManifest is one scenario incident's machine-readable ground
	// truth: kind, involved users, activation window and fraud txn IDs.
	ScenarioManifest = synth.ScenarioManifest
	// WorldManifest indexes every labeled scenario of a composed world —
	// the ground truth load harnesses grade detection against.
	WorldManifest = synth.Manifest
	// Dataset is one "T+1" experiment unit (network/train/test windows).
	Dataset = txn.Dataset
	// Transaction is a single transfer record.
	Transaction = txn.Transaction
	// User is a user profile.
	User = txn.User
	// Options bundles all model hyperparameters (paper Section 5.1).
	Options = core.Options
	// FeatureSet selects the detector's input features (Table 1 rows).
	FeatureSet = core.FeatureSet
	// Detector selects the detection method.
	Detector = core.Detector
	// Embeddings caches the two NRL methods' outputs for a dataset.
	Embeddings = core.Embeddings
	// Result is one configuration's evaluation on one test day.
	Result = core.Result
	// Classifier is a trained scoring model.
	Classifier = model.Classifier
	// BatchScorer is the vectorised scoring contract: detectors that
	// implement it (all four built-ins do) score whole feature matrices
	// per call instead of row by row, which is what the serving engine's
	// batch-native runtime dispatches to.
	BatchScorer = model.BatchScorer
	// Bundle is the model artefact served by the Model Server: a v1
	// single classifier or a v2 ensemble of named members.
	Bundle = ms.Bundle
	// EnsembleMember names one trained detector of an ensemble bundle.
	EnsembleMember = ms.EnsembleMember
	// Combiner selects how an ensemble folds member scores (mean, max or
	// weighted vote).
	Combiner = ms.Combiner
	// MemberScore is one member's contribution to a Verdict, exposed for
	// explainability on /v1/score.
	MemberScore = ms.MemberScore
	// Engine is the v1 online scoring engine (Figure 5): context-aware
	// Score, batch-first ScoreBatch, functional options, typed errors and
	// the versioned HTTP API.
	Engine = ms.Server
	// ShardedEngine is N engines behind one consistent-hash ring: every
	// user's rows, cache entries and stream state live on exactly one
	// shard, batches scatter/gather across shards, and model/policy
	// swaps apply atomically to all of them (see NewShardedEngine).
	ShardedEngine = ms.ShardedEngine
	// UserSink receives deployed user rows (see DeployTo); the sharded
	// uploader from NewShardedUploader partitions them across a table
	// ring by the same hash the sharded engine routes with.
	UserSink = core.UserSink
	// EngineOption configures the scoring engine (see WithAlert,
	// WithWorkers, WithHistogram, WithStrictUsers, WithMaxBatch).
	EngineOption = ms.Option
	// Alert is the fraud-interruption callback fired for transactions
	// scored at or above the bundle threshold.
	Alert = ms.Alert
	// Verdict is one transaction's scoring outcome.
	Verdict = ms.Verdict
	// FeatureTable is the column-family online feature store (Figure 7).
	FeatureTable = hbase.Table
	// CityTable is the frozen per-city statistics table that travels
	// inside a model bundle.
	CityTable = feature.CityTable
	// StreamStore is the sharded streaming aggregate store: incremental
	// sliding-window velocity/diversity/city statistics on the hot path
	// (see internal/feature/stream).
	StreamStore = stream.Store
	// StreamOption configures a StreamStore (see WithStreamShards,
	// WithStreamWindow, WithStreamCities).
	StreamOption = stream.Option
	// UserCacheStats snapshots the engine's read-through user-cache
	// counters (see WithUserCache and Engine.UserCacheStats).
	UserCacheStats = usercache.Stats
	// EventLogOption tunes the engine's durable event log (see
	// WithEventLog and internal/eventlog).
	EventLogOption = eventlog.Option
	// EventLogStats is the event log's operational snapshot
	// (Engine.EventLogStats, /v1/stats "eventlog" section).
	EventLogStats = eventlog.Stats
	// EventLogInspection summarises a log directory offline (see
	// InspectEventLog and `titant logctl`).
	EventLogInspection = eventlog.InspectResult
	// DecisionPolicy is a versioned risk-decision policy document:
	// per-scenario threshold bands plus rule predicates, mapping scores
	// to approve/challenge/deny actions (see internal/decision).
	DecisionPolicy = decision.Policy
	// DecisionAction is a risk decision: approve, challenge or deny.
	DecisionAction = decision.Action
	// Scenario selects which per-scenario policy applies (payment,
	// transfer, withdrawal or default).
	Scenario = decision.Scenario
	// Decision is one transaction's decisioning outcome: the scoring
	// verdict plus the policy action and its attribution.
	Decision = ms.Decision
	// PolicyInfo summarises the engine's active policy.
	PolicyInfo = ms.PolicyInfo
	// HealthInfo is the engine's readiness snapshot (GET /healthz).
	HealthInfo = ms.HealthInfo
	// AdmissionStats snapshots the engine's admission-control counters
	// (see WithCallerQuota, WithMaxInflight and /v1/stats "admission").
	AdmissionStats = ms.AdmissionStats
	// DriftConfig tunes the score drift monitor (see WithDriftMonitor).
	DriftConfig = decision.DriftConfig
	// DriftStats is one score series' drift snapshot (PSI/KS vs the
	// baseline frozen at bundle deploy).
	DriftStats = decision.DriftStats
	// ShadowStats snapshots champion/challenger agreement, divergence
	// and would-have-flipped counters (see WithShadow).
	ShadowStats = decision.ShadowStats
	// ExperimentConfig scales a paper-experiment run.
	ExperimentConfig = exp.Config
)

// Feature sets of Table 1.
const (
	FeatBasic      = core.FeatBasic
	FeatBasicS2V   = core.FeatBasicS2V
	FeatBasicDW    = core.FeatBasicDW
	FeatBasicDWS2V = core.FeatBasicDWS2V
)

// Detectors evaluated in the paper.
const (
	DetIF   = core.DetIF
	DetID3  = core.DetID3
	DetC50  = core.DetC50
	DetLR   = core.DetLR
	DetGBDT = core.DetGBDT
)

// Ensemble combiners of the v2 bundle format.
const (
	CombineMean = ms.CombineMean
	CombineMax  = ms.CombineMax
	CombineVote = ms.CombineVote
)

// Decision actions, in severity order.
const (
	ActionApprove   = decision.ActionApprove
	ActionChallenge = decision.ActionChallenge
	ActionDeny      = decision.ActionDeny
)

// Decision scenarios.
const (
	ScenarioDefault    = decision.ScenarioDefault
	ScenarioPayment    = decision.ScenarioPayment
	ScenarioTransfer   = decision.ScenarioTransfer
	ScenarioWithdrawal = decision.ScenarioWithdrawal
)

// DefaultUserCacheSize is the entry capacity daemons use when enabling
// the read-through user cache without an explicit size.
const DefaultUserCacheSize = ms.DefaultUserCacheSize

// DefaultShadowQueue is the bounded shadow-queue capacity of an engine
// built with WithShadow but no WithShadowQueue.
const DefaultShadowQueue = ms.DefaultShadowQueue

// ParseCombiner maps "mean", "max" or "vote" to a Combiner.
func ParseCombiner(s string) (Combiner, error) { return ms.ParseCombiner(s) }

// ParsePolicy decodes, validates and compiles a JSON decision-policy
// document (the wire format of POST /v1/policy).
func ParsePolicy(data []byte) (*DecisionPolicy, error) { return decision.Parse(data) }

// DefaultPolicy builds the built-in decision policy derived from a
// bundle's frozen threshold: approve below it, challenge the band above
// it, deny near certainty — with the withdrawal scenario denying
// everything the model flags.
func DefaultPolicy(version string, threshold float64) *DecisionPolicy {
	return decision.Default(version, threshold)
}

// ParseScenario maps "", "default", "payment", "transfer" or
// "withdrawal" to a Scenario.
func ParseScenario(s string) (Scenario, error) { return decision.ParseScenario(s) }

// DefaultDriftConfig returns the drift monitor defaults.
func DefaultDriftConfig() DriftConfig { return decision.DefaultDriftConfig() }

// ParseDetector maps a CLI name (if, id3, c50, lr, gbdt) to a Detector.
func ParseDetector(s string) (Detector, error) { return core.ParseDetector(s) }

// DefaultWorldConfig returns the laptop-scale synthetic world settings.
func DefaultWorldConfig() WorldConfig { return synth.DefaultConfig() }

// Generate builds a synthetic world from the configuration.
func Generate(cfg WorldConfig) *World { return synth.Generate(cfg) }

// DefaultScenarioMix returns the laptop-scale attack mix: a handful of
// incidents per scenario kind layered onto the base ring-fraud world.
func DefaultScenarioMix() ScenarioMix { return synth.DefaultScenarioMix() }

// ComposeWorld layers the scenario mix's attack incidents onto the base
// ring-fraud world generated from cfg, returning the composed world and
// the ground-truth manifest. Deterministic in cfg.Seed.
func ComposeWorld(cfg WorldConfig, mix ScenarioMix) (*World, *WorldManifest) {
	return synth.Compose(cfg, mix)
}

// DecodeWorldManifest parses a manifest written by WorldManifest.Encode.
func DecodeWorldManifest(data []byte) (*WorldManifest, error) {
	return synth.DecodeManifest(data)
}

// DefaultOptions returns the paper-aligned hyperparameters.
func DefaultOptions() Options { return core.DefaultOptions() }

// LearnEmbeddings trains DeepWalk and Structure2Vec on the dataset's
// 90-day transaction network.
func LearnEmbeddings(ds *Dataset, opts Options) *Embeddings {
	return core.LearnEmbeddings(ds, opts)
}

// TrainEval runs the full T+1 pipeline for one configuration cell.
func TrainEval(users []User, ds *Dataset, fs FeatureSet, det Detector, emb *Embeddings, opts Options) Result {
	return core.TrainEval(users, ds, fs, det, emb, opts)
}

// TrainForServing trains the production configuration (Basic+DW+GBDT) and
// returns the classifier, embeddings and frozen threshold.
func TrainForServing(users []User, ds *Dataset, opts Options) (Classifier, *Embeddings, float64, error) {
	return core.TrainForServing(users, ds, opts)
}

// TrainEnsembleForServing trains one detector per entry of dets on the
// production feature set (Basic+DW), freezing per-member thresholds and
// the combined decision threshold on the validation days.
func TrainEnsembleForServing(users []User, ds *Dataset, dets []Detector, combine Combiner, opts Options) ([]EnsembleMember, *Embeddings, float64, error) {
	return core.TrainEnsembleForServing(users, ds, dets, combine, opts)
}

// NewEnsembleBundle builds a v2 bundle from an ordered set of trained
// detectors; threshold acts on the combined score.
func NewEnsembleBundle(version string, members []EnsembleMember, combine Combiner, threshold float64, city CityTable, embDim int) (*Bundle, error) {
	return ms.NewEnsembleBundle(version, members, combine, threshold, city, embDim)
}

// OpenFeatureTable opens (or creates) an online feature store.
func OpenFeatureTable(dir string) (*FeatureTable, error) {
	return hbase.Open(hbase.Config{Dir: dir})
}

// Deploy uploads user fragments and embeddings to the feature table and
// builds the model bundle for serving.
func Deploy(users []User, ds *Dataset, emb *Embeddings, clf Classifier, threshold float64, opts Options, tab *FeatureTable, version string) (*Bundle, error) {
	return core.Deploy(users, ds, emb, clf, threshold, opts, tab, version)
}

// DeployEnsemble is Deploy for ensemble bundles: uploads every user's
// fragments and builds a v2 bundle combining the trained members.
func DeployEnsemble(users []User, ds *Dataset, emb *Embeddings, members []EnsembleMember, combine Combiner, threshold float64, opts Options, tab *FeatureTable, version string) (*Bundle, error) {
	return core.DeployEnsemble(users, ds, emb, members, combine, threshold, opts, tab, version)
}

// BuildEnsembleBundle assembles a v2 ensemble bundle from trained members
// without touching the online stores.
func BuildEnsembleBundle(ds *Dataset, emb *Embeddings, members []EnsembleMember, combine Combiner, threshold float64, opts Options, version string) (*Bundle, error) {
	return core.BuildEnsembleBundle(ds, emb, members, combine, threshold, opts, version)
}

// NewEngine builds the v1 online scoring engine over the feature table.
func NewEngine(tab *FeatureTable, bundle *Bundle, opts ...EngineOption) (*Engine, error) {
	return ms.New(tab, bundle, opts...)
}

// NewShardedEngine builds an engine partitioned across len(tables)
// in-process shards: users map to shards by consistent hash (ShardOf),
// each shard owns its table, user cache and per-user hot state, batches
// scatter to the owning shards and gather in input order, and
// SetBundle/SetPolicy swap every shard atomically. One shard behaves
// bitwise-identically to NewEngine over the same table.
func NewShardedEngine(tables []*FeatureTable, bundle *Bundle, opts ...EngineOption) (*ShardedEngine, error) {
	return ms.NewSharded(tables, bundle, opts...)
}

// NewShardedUploader returns a UserSink that routes each deployed user
// row to its owner table in the ring by the same hash the sharded
// engine scores with. version follows the Uploader convention
// (0 = auto wall-clock).
func NewShardedUploader(tables []*FeatureTable, version int64) UserSink {
	return ms.NewShardedUploader(tables, version)
}

// ShardOf reports which of n shards owns user u — the consistent hash
// the sharded engine, the sharded uploader and the scatter/gather
// router all agree on.
func ShardOf(u txn.UserID, n int) int { return ms.ShardOf(u, n) }

// DeployTo is Deploy against any UserSink — pass NewShardedUploader's
// sink to partition the upload wave across a ring of shard tables.
func DeployTo(users []User, ds *Dataset, emb *Embeddings, clf Classifier, threshold float64, opts Options, sink UserSink, version string) (*Bundle, error) {
	return core.DeployTo(users, ds, emb, clf, threshold, opts, sink, version)
}

// DeployEnsembleTo is DeployEnsemble against any UserSink (see DeployTo).
func DeployEnsembleTo(users []User, ds *Dataset, emb *Embeddings, members []EnsembleMember, combine Combiner, threshold float64, opts Options, sink UserSink, version string) (*Bundle, error) {
	return core.DeployEnsembleTo(users, ds, emb, members, combine, threshold, opts, sink, version)
}

// WithAlert sets the fraud-interruption callback.
func WithAlert(a Alert) EngineOption { return ms.WithAlert(a) }

// WithWorkers sets the batch fan-out width (default GOMAXPROCS).
func WithWorkers(n int) EngineOption { return ms.WithWorkers(n) }

// WithHistogram replaces the default latency-histogram bucket bounds.
func WithHistogram(bounds []time.Duration) EngineOption { return ms.WithHistogram(bounds) }

// WithStrictUsers makes scoring fail with ms.ErrUserNotFound for users
// absent from the feature store instead of serving zero fragments.
func WithStrictUsers() EngineOption { return ms.WithStrictUsers() }

// WithMaxBatch overrides the ScoreBatch size limit (n <= 0 removes it).
func WithMaxBatch(n int) EngineOption { return ms.WithMaxBatch(n) }

// WithUserCache layers a sharded read-through cache of decoded user
// fragments over the feature store (size entries, CLOCK-evicted;
// n <= 0 disables it). Hits skip the store and every codec; invalidation
// is wired through Engine.InvalidateUser, bundle swaps and ingest.
func WithUserCache(size int) EngineOption { return ms.WithUserCache(size) }

// WithPolicy attaches a decision policy: the engine gains Decide /
// DecideBatch and the POST /v1/decide[/batch] + /v1/policy routes,
// mapping scores through per-scenario threshold bands and rule
// predicates to approve/challenge/deny actions.
func WithPolicy(p *DecisionPolicy) EngineOption { return ms.WithPolicy(p) }

// WithShadow deploys a challenger bundle in shadow: scored traffic is
// re-scored against it asynchronously (bounded queue, drop-on-overflow)
// and champion/challenger agreement surfaces on /v1/stats.
func WithShadow(challenger *Bundle) EngineOption { return ms.WithShadow(challenger) }

// WithShadowQueue bounds the shadow queue (default DefaultShadowQueue).
func WithShadowQueue(n int) EngineOption { return ms.WithShadowQueue(n) }

// WithDriftMonitor enables per-member score drift monitoring (PSI/KS
// against a baseline frozen at bundle deploy); zero-valued fields take
// DefaultDriftConfig.
func WithDriftMonitor(cfg DriftConfig) EngineOption { return ms.WithDriftMonitor(cfg) }

// WithModelToken guards POST /v1/models and /v1/policy behind a bearer
// token.
func WithModelToken(token string) EngineOption { return ms.WithModelToken(token) }

// WithIngestToken guards POST /v1/ingest[/batch] behind a bearer token.
func WithIngestToken(token string) EngineOption { return ms.WithIngestToken(token) }

// WithCallerQuota rate-limits each caller identity (the X-Caller header,
// or WithCallerContext in process) to a token bucket of rate requests
// per second with the given burst. Refusals surface as HTTP 429
// "rate_limited".
func WithCallerQuota(rate float64, burst int) EngineOption { return ms.WithCallerQuota(rate, burst) }

// WithMaxInflight sheds load once n requests are concurrently admitted;
// refusals surface as HTTP 429 "overloaded".
func WithMaxInflight(n int) EngineOption { return ms.WithMaxInflight(n) }

// WithCallerContext tags ctx with a caller identity for per-caller
// quotas on the in-process API (Score, Decide, Admit).
func WithCallerContext(ctx context.Context, caller string) context.Context {
	return ms.WithCallerContext(ctx, caller)
}

// NewStreamStore builds a streaming aggregate store. The defaults mirror
// the paper's reference window: 90 day-wide buckets over 64 lock stripes.
func NewStreamStore(opts ...StreamOption) *StreamStore { return stream.New(opts...) }

// WithStreamShards sets the store's lock-stripe count (rounded up to a
// power of two).
func WithStreamShards(n int) StreamOption { return stream.WithShards(n) }

// WithStreamWindow sets the sliding-window geometry: buckets ring slots
// of bucketSeconds each.
func WithStreamWindow(buckets int, bucketSeconds int64) StreamOption {
	return stream.WithWindow(buckets, bucketSeconds)
}

// WithStreamCities bounds the store's city table.
func WithStreamCities(n int) StreamOption { return stream.WithCities(n) }

// WithStreamAggregates attaches a streaming store to the engine: scoring
// reads live per-city statistics and Ingest / POST /v1/ingest keep the
// window current.
func WithStreamAggregates(st *StreamStore) EngineOption { return ms.WithStreamAggregates(st) }

// WithStreamWarmup sets how many transactions the live window needs
// before scoring trusts it over the bundle's frozen city table.
func WithStreamWarmup(n int64) EngineOption { return ms.WithStreamWarmup(n) }

// WithEventLog attaches a durable, replayable event log rooted at dir:
// ingest becomes log-then-apply, scoring logs drift and shadow
// observations, and a restarted engine rebuilds its streaming window,
// drift baselines and shadow tallies bitwise-identical by snapshot load
// plus tail replay.
func WithEventLog(dir string, opts ...EventLogOption) EngineOption {
	return ms.WithEventLog(dir, opts...)
}

// WithSnapshotEvery sets how many log events accumulate between
// derived-state snapshots (n <= 0 disables snapshotting).
func WithSnapshotEvery(n int64) EngineOption { return ms.WithSnapshotEvery(n) }

// WithEventLogFsyncInterval sets the log's group-commit fsync timer.
func WithEventLogFsyncInterval(d time.Duration) EventLogOption {
	return eventlog.WithFsyncInterval(d)
}

// WithEventLogSegmentBytes sets the log's segment rotation threshold.
func WithEventLogSegmentBytes(n int64) EventLogOption { return eventlog.WithSegmentBytes(n) }

// WithEventLogRetainSegments sets the minimum segment count compaction
// keeps.
func WithEventLogRetainSegments(n int) EventLogOption { return eventlog.WithRetainSegments(n) }

// InspectEventLog scans a log directory offline: segment chain, record
// counts by kind, consumer offsets, newest snapshot.
func InspectEventLog(dir string) (EventLogInspection, error) { return eventlog.Inspect(dir) }

// CompactEventLog removes sealed log segments that the newest snapshot
// and every consumer are past, keeping at least retain segments
// (retain <= 0 takes the default). Returns the removed segment paths.
func CompactEventLog(dir string, retain int) ([]string, error) {
	return eventlog.CompactDir(dir, retain)
}

// ModelServer is the pre-v1 serving facade: a thin wrapper over Engine
// whose Score takes no context.
//
// Deprecated: use Engine via NewEngine; its Score takes a
// context.Context and ScoreBatch serves whole batches.
type ModelServer struct{ *Engine }

// Score scores one transaction without cancellation support.
//
// Deprecated: use Engine.Score with a context.
func (s *ModelServer) Score(t *Transaction) (Verdict, error) {
	return s.Engine.Score(context.Background(), t)
}

// NewModelServer builds the online scoring server over the feature table.
//
// Deprecated: use NewEngine with WithAlert.
func NewModelServer(tab *FeatureTable, bundle *Bundle, alert Alert) (*ModelServer, error) {
	eng, err := ms.New(tab, bundle, ms.WithAlert(alert))
	if err != nil {
		return nil, err
	}
	return &ModelServer{eng}, nil
}

// DefaultExperiments returns the default-scale experiment configuration.
func DefaultExperiments() ExperimentConfig { return exp.Default() }
