# Developer entry points. The repo is plain `go build ./... && go test
# ./...`; these targets wrap the multi-step flows.

# bench-serving pipes `go test` through tee and benchjson; bash with
# pipefail makes a failing benchmark run fail the target instead of
# producing an empty-but-green JSON report.
SHELL := /bin/bash

BENCHTIME ?= 100x

.PHONY: test race bench-serving

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/feature/stream/ ./internal/ms/... ./internal/hbase/ ./internal/decision/ ./internal/eventlog/ ./internal/logio/

# bench-serving runs the hot serving read-path benchmarks (user fetch,
# multi-get, point read, cached and uncached batch scoring, plus the
# decision path with policy and shadow variants) and writes
# BENCH_serving.json — ns/op and allocs/op per benchmark — so future PRs
# have machine-readable numbers to compare against; in particular,
# BenchmarkDecideBatch/policy vs BenchmarkScoreBatch tracks the decision
# path's overhead budget, BenchmarkIngestLogged/logged vs /unlogged the
# event log's ingest overhead (must stay allocation-flat), and
# BenchmarkReplay the crash-recovery ns/record budget. BENCHTIME trades
# precision for wall clock (use e.g. BENCHTIME=2s locally).
bench-serving:
	@set -o pipefail; { \
	  go test -run '^$$' -bench 'BenchmarkGet$$|BenchmarkMultiGet' -benchmem -benchtime=$(BENCHTIME) ./internal/hbase/ && \
	  go test -run '^$$' -bench 'BenchmarkFetchUser' -benchmem -benchtime=$(BENCHTIME) ./internal/ms/ && \
	  go test -run '^$$' -bench 'BenchmarkScoreSequential|BenchmarkScoreBatch$$|BenchmarkScoreBatchCached|BenchmarkDecideBatch|BenchmarkIngestLogged|BenchmarkReplay$$' -benchmem -benchtime=$(BENCHTIME) . ; \
	} | tee /dev/stderr | go run ./cmd/benchjson > BENCH_serving.json
	@echo "wrote BENCH_serving.json"
