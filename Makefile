# Developer entry points. The repo is plain `go build ./... && go test
# ./...`; these targets wrap the multi-step flows.

# bench-serving pipes `go test` through tee and benchjson; bash with
# pipefail makes a failing benchmark run fail the target instead of
# producing an empty-but-green JSON report.
SHELL := /bin/bash

BENCHTIME ?= 100x

.PHONY: test race bench-serving loadgen-smoke chaos-smoke metrics-smoke

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/feature/stream/ ./internal/ms/... ./internal/router/ ./internal/faultinject/ ./internal/hbase/ ./internal/decision/ ./internal/eventlog/ ./internal/logio/ ./internal/loadgen/ ./internal/synth/ ./internal/telemetry/

# bench-serving runs the hot serving read-path benchmarks (user fetch,
# multi-get, point read, cached and uncached batch scoring, plus the
# decision path with policy and shadow variants) and writes
# BENCH_serving.json — ns/op and allocs/op per benchmark — so future PRs
# have machine-readable numbers to compare against; in particular,
# BenchmarkDecideBatch/policy vs BenchmarkScoreBatch tracks the decision
# path's overhead budget, BenchmarkIngestLogged/logged vs /unlogged the
# event log's ingest overhead (must stay allocation-flat),
# BenchmarkScoreBatchTraced/traced vs /untraced the telemetry plane's
# span-aggregation overhead (its built-in guard fails the run past 5%
# or one extra alloc/op), and BenchmarkReplay the crash-recovery
# ns/record budget. BENCHTIME trades precision for wall clock (use e.g.
# BENCHTIME=2s locally).
bench-serving:
	@set -o pipefail; { \
	  go test -run '^$$' -bench 'BenchmarkGet$$|BenchmarkMultiGet' -benchmem -benchtime=$(BENCHTIME) ./internal/hbase/ && \
	  go test -run '^$$' -bench 'BenchmarkFetchUser' -benchmem -benchtime=$(BENCHTIME) ./internal/ms/ && \
	  go test -run '^$$' -bench 'BenchmarkScoreSequential|BenchmarkScoreBatch$$|BenchmarkScoreBatchCached|BenchmarkScoreBatchTraced|BenchmarkScoreBatchSharded|BenchmarkDecideBatch|BenchmarkIngestLogged|BenchmarkReplay$$' -benchmem -benchtime=$(BENCHTIME) . ; \
	} | tee /dev/stderr | go run ./cmd/benchjson > BENCH_serving.json
	@echo "wrote BENCH_serving.json"

# loadgen-smoke runs the open-loop scenario load harness end to end in
# process — compose the scenario world, train a fast bundle, drive the
# engine under admission control — and writes LOADGEN_report.json
# (throughput, p50/p99/p999 from scheduled arrival, per-scenario recall
# and precision against the manifests) next to BENCH_serving.json, so
# every PR leaves a detection-quality and tail-latency trajectory. The
# run doubles as an SLO gate: ci/slo.json pins tail-latency ceilings and
# per-scenario recall floors, and a breach fails the target.
loadgen-smoke:
	go run ./cmd/titant loadgen -users 1200 -detectors gbdt -schedule spike \
	  -rate 1500 -duration 5s -quota 1200 -burst 600 -max-inflight 256 \
	  -out LOADGEN_report.json -slo ci/slo.json
	@echo "wrote LOADGEN_report.json"

# chaos-smoke runs the scripted fault scenario (ci/chaos.json) against an
# in-process wire fleet — four shard servers behind the resilient router,
# the fault transport wedged between them — under the race detector. The
# run's built-in gate fails if a scripted rule never fires, if a
# blackholed shard's breaker never opens, or if the breaker has not
# half-opened and closed again once the fault window ends; errors stay
# separate from typed degraded answers in LOADGEN_chaos.json.
chaos-smoke:
	go run -race ./cmd/titant loadgen -chaos ci/chaos.json -shards 4 \
	  -rate 250 -duration 12s -out LOADGEN_chaos.json
	@echo "wrote LOADGEN_chaos.json"

# metrics-smoke is the CI gate over the Prometheus surface: boot an
# in-process sharded fleet (the chaos fixture minus the faults), drive
# mixed traffic through the router, scrape /metrics from the router and
# every shard, then lint every page, require the full serving-counter
# and stage-histogram family set on the router page, and diff the
# router's re-labeled self-scrape against the union of the raw shard
# pages — a shard series the router drops, or a shard-labeled series no
# shard emitted, fails the target. The scraped pages land in
# METRICS_scrape/ as the CI artifact.
metrics-smoke:
	go run ./cmd/titant metrics-smoke -users 1200 -shards 2 -requests 200 \
	  -out METRICS_scrape
	@echo "wrote METRICS_scrape/"
