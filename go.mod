module titant

go 1.24
