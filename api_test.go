package titant_test

import (
	"context"
	"testing"

	"titant"
)

// TestPublicAPIQuickstart exercises the facade end to end on a tiny world:
// generate, slice, embed, train, evaluate, deploy, serve.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 800
	cfg.Communities = 8
	cfg.Cities = 20
	cfg.FraudsterFrac = 0.025
	world := titant.Generate(cfg)

	ds, err := world.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 40
	opts.LR.Iterations = 5
	opts.DW.WalksPerNode = 3
	opts.S2V.Epochs = 2

	emb := titant.LearnEmbeddings(ds, opts)
	res := titant.TrainEval(world.Users, ds, titant.FeatBasicDW, titant.DetGBDT, emb, opts)
	if res.F1 < 0 || res.F1 > 1 {
		t.Fatalf("F1 = %v", res.F1)
	}

	clf, emb2, threshold, err := titant.TrainForServing(world.Users, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := titant.OpenFeatureTable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	bundle, err := titant.Deploy(world.Users, ds, emb2, clf, threshold, opts, tab, "v1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := titant.NewModelServer(tab, bundle, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := srv.Score(&ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Score < 0 || v.Score > 1.5 {
		t.Fatalf("verdict = %+v", v)
	}
}

// TestPublicAPIStreaming exercises the streaming serving path through the
// facade: build a live window from the reference days, score against it,
// and keep it current with observed traffic.
func TestPublicAPIStreaming(t *testing.T) {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 600
	cfg.Communities = 6
	cfg.Cities = 16
	world := titant.Generate(cfg)
	ds, err := world.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 30
	opts.DW.WalksPerNode = 2

	clf, emb, threshold, err := titant.TrainForServing(world.Users, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := titant.OpenFeatureTable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	bundle, err := titant.Deploy(world.Users, ds, emb, clf, threshold, opts, tab, "v1")
	if err != nil {
		t.Fatal(err)
	}

	st := titant.NewStreamStore(
		titant.WithStreamShards(8),
		titant.WithStreamCities(opts.Cities))
	st.IngestBatch(ds.Network) // warm the window from the 90-day reference days
	eng, err := titant.NewEngine(tab, bundle, titant.WithStreamAggregates(st))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := range ds.Test[:20] {
		tx := &ds.Test[i]
		v, err := eng.Score(ctx, tx)
		if err != nil {
			t.Fatal(err)
		}
		if v.Score < 0 || v.Score > 1.5 {
			t.Fatalf("verdict = %+v", v)
		}
		if err := eng.Ingest(tx); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Ingested(); got != int64(len(ds.Network)+20) {
		t.Fatalf("ingested = %d, want %d", got, len(ds.Network)+20)
	}
}
