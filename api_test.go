package titant_test

import (
	"testing"

	"titant"
)

// TestPublicAPIQuickstart exercises the facade end to end on a tiny world:
// generate, slice, embed, train, evaluate, deploy, serve.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 800
	cfg.Communities = 8
	cfg.Cities = 20
	cfg.FraudsterFrac = 0.025
	world := titant.Generate(cfg)

	ds, err := world.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 40
	opts.LR.Iterations = 5
	opts.DW.WalksPerNode = 3
	opts.S2V.Epochs = 2

	emb := titant.LearnEmbeddings(ds, opts)
	res := titant.TrainEval(world.Users, ds, titant.FeatBasicDW, titant.DetGBDT, emb, opts)
	if res.F1 < 0 || res.F1 > 1 {
		t.Fatalf("F1 = %v", res.F1)
	}

	clf, emb2, threshold, err := titant.TrainForServing(world.Users, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := titant.OpenFeatureTable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	bundle, err := titant.Deploy(world.Users, ds, emb2, clf, threshold, opts, tab, "v1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := titant.NewModelServer(tab, bundle, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := srv.Score(&ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Score < 0 || v.Score > 1.5 {
		t.Fatalf("verdict = %+v", v)
	}
}
