package titant_test

import (
	"context"
	"testing"
	"time"

	"titant"
	"titant/internal/loadgen"
	"titant/internal/txn"
)

// TestDetectionQualityGate is the recall gate: it composes the attack
// scenario library onto the ring-fraud world at a fixed seed, trains the
// production detector with a reduced budget, replays the labeled test
// window through the load harness and pins per-scenario recall floors
// and a false-positive ceiling. The workload is a pure function of its
// seeds, so a drop below a floor is a detection regression, not noise;
// the floors carry margin below the measured values (ring 0.46, ATO
// 1.0, bust-out 0.91, card-testing 1.0, mule-chain 1.0, FPR 0.006).
func TestDetectionQualityGate(t *testing.T) {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 1200
	world, man := titant.ComposeWorld(cfg, titant.DefaultScenarioMix())
	if len(man.Scenarios) == 0 {
		t.Fatal("composed world has no scenario manifests")
	}
	ds, err := world.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 40
	opts.LR.Iterations = 5
	opts.DW.WalksPerNode = 3
	opts.S2V.Epochs = 2

	members, emb, threshold, err := titant.TrainEnsembleForServing(
		world.Users, ds, []titant.Detector{titant.DetGBDT}, titant.CombineMean, opts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := titant.OpenFeatureTable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	bundle, err := titant.DeployEnsemble(world.Users, ds, emb, members, titant.CombineMean, threshold, opts, tab, "gate")
	if err != nil {
		t.Fatal(err)
	}
	st := titant.NewStreamStore(titant.WithStreamCities(opts.Cities))
	st.IngestBatch(ds.Network)
	eng, err := titant.NewEngine(tab, bundle, titant.WithStreamAggregates(st))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Replay the full test window (every day past the training cut) so
	// each scenario kind's fraud produces verdicts.
	cut := txn.Day(txn.NetworkDays + txn.TrainDays)
	var replay []txn.Transaction
	for i := range world.Log {
		if world.Log[i].Day >= cut {
			replay = append(replay, world.Log[i])
		}
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Schedule: loadgen.Constant{Rate: 4000},
		Duration: time.Second,
		Seed:     7,
		Mix:      loadgen.OpMix{Score: 1}, // verdicts only: no policy-band flagging
		Users:    10000,
		Replay:   replay,
		Manifest: man,
	}, &loadgen.EngineTarget{Server: eng})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Errors != 0 || rep.Shed != 0 {
		t.Fatalf("load run not clean: %d errors, %d shed", rep.Errors, rep.Shed)
	}
	if rep.Replayed != int64(len(replay)) {
		t.Fatalf("replayed %d of %d labeled transactions", rep.Replayed, len(replay))
	}

	floors := map[string]float64{
		"ring":             0.30,
		"account_takeover": 0.80,
		"bust_out":         0.70,
		"card_testing":     0.85,
		"mule_chain":       0.75,
	}
	seen := map[string]bool{}
	for _, s := range rep.Scenarios {
		seen[s.Kind] = true
		floor, ok := floors[s.Kind]
		if !ok {
			t.Errorf("unexpected scenario kind %q in report", s.Kind)
			continue
		}
		if s.Replayed == 0 {
			t.Errorf("%s: no labeled fraud replayed", s.Kind)
		}
		if s.Recall < floor {
			t.Errorf("%s: recall %.3f below floor %.2f (flagged %d of %d)",
				s.Kind, s.Recall, floor, s.Flagged, s.Replayed)
		}
	}
	for kind := range floors {
		if !seen[kind] {
			t.Errorf("scenario kind %q missing from report", kind)
		}
	}
	if rep.Recall < 0.55 {
		t.Errorf("overall recall %.3f below floor 0.55", rep.Recall)
	}
	if rep.Precision < 0.80 {
		t.Errorf("precision %.3f below floor 0.80", rep.Precision)
	}
	if rep.FalsePositiveRate > 0.02 {
		t.Errorf("false positive rate %.4f above ceiling 0.02", rep.FalsePositiveRate)
	}
}
